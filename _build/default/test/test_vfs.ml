(* Semantics tests for the in-memory file system: extent algebra, path
   resolution, and the POSIX behaviour of every modeled syscall,
   including each reachable error path. *)

open Iocov_syscall
open Iocov_vfs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ret_fd = function
  | Model.Ret fd -> fd
  | Model.Err e -> Alcotest.failf "expected success, got %s" (Errno.to_string e)

let expect_ret what expected outcome =
  match outcome with
  | Model.Ret n -> Alcotest.(check int) what expected n
  | Model.Err e -> Alcotest.failf "%s: expected %d, got %s" what expected (Errno.to_string e)

let expect_err what expected outcome =
  match outcome with
  | Model.Err e ->
    Alcotest.(check string) what (Errno.to_string expected) (Errno.to_string e)
  | Model.Ret n -> Alcotest.failf "%s: expected %s, got %d" what (Errno.to_string expected) n

let rdonly = Open_flags.of_flags Open_flags.[ O_RDONLY ]
let wronly = Open_flags.of_flags Open_flags.[ O_WRONLY ]
let rdwr = Open_flags.of_flags Open_flags.[ O_RDWR ]
let creat = Open_flags.of_flags Open_flags.[ O_WRONLY; O_CREAT ]
let creat_rw = Open_flags.of_flags Open_flags.[ O_RDWR; O_CREAT ]

let fresh ?config () =
  let fs = Fs.create ?config () in
  ignore (Fs.exec fs (Model.mkdir ~mode:0o755 "/d"));
  fs

let make_file ?(size = 0) fs path =
  let fd = ret_fd (Fs.exec fs (Model.open_ ~mode:0o644 ~flags:creat_rw path)) in
  if size > 0 then expect_ret "setup write" size (Fs.exec fs (Model.write ~fd ~count:size ()));
  ignore (Fs.exec fs (Model.close fd));
  path

(* --- Node extent algebra --- *)

let test_extents_empty_segments () =
  Alcotest.(check int) "hole only" 1 (List.length (Node.segments [] ~off:0 ~len:100));
  (match Node.segments [] ~off:0 ~len:100 with
   | [ (0, 100, None) ] -> ()
   | _ -> Alcotest.fail "expected one hole segment")

let test_extents_write_then_read () =
  let e = Node.write_extents [] ~off:10 ~len:5 ~fill:'x' in
  Alcotest.(check char) "in data" 'x' (Node.byte_at e 12);
  Alcotest.(check char) "in hole" '\000' (Node.byte_at e 3);
  Alcotest.(check char) "past data" '\000' (Node.byte_at e 15)

let test_extents_overwrite_splits () =
  let e = Node.write_extents [] ~off:0 ~len:10 ~fill:'a' in
  let e = Node.write_extents e ~off:3 ~len:4 ~fill:'b' in
  Alcotest.(check char) "left keeps a" 'a' (Node.byte_at e 2);
  Alcotest.(check char) "middle is b" 'b' (Node.byte_at e 5);
  Alcotest.(check char) "right keeps a" 'a' (Node.byte_at e 8)

let test_extents_truncate () =
  let e = Node.write_extents [] ~off:0 ~len:100 ~fill:'z' in
  let e = Node.truncate_extents e ~size:50 in
  Alcotest.(check char) "kept" 'z' (Node.byte_at e 49);
  Alcotest.(check char) "dropped" '\000' (Node.byte_at e 50)

let test_extents_next_data_hole () =
  let e = Node.write_extents [] ~off:4096 ~len:4096 ~fill:'d' in
  check_bool "next_data from 0" true (Node.next_data e ~off:0 = Some 4096);
  check_bool "next_data inside" true (Node.next_data e ~off:5000 = Some 5000);
  check_bool "next_data past" true (Node.next_data e ~off:8192 = None);
  check_int "next_hole at 0" 0 (Node.next_hole e ~off:0);
  check_int "next_hole inside data" 8192 (Node.next_hole e ~off:4096)

let test_extents_zero_write_identity () =
  let e = Node.write_extents [] ~off:5 ~len:0 ~fill:'q' in
  check_bool "no extents" true (e = [])

(* Reference model: compare the extent algebra against a plain byte
   array under a random schedule of writes and truncates. *)
let extents_match_reference_prop =
  let op_gen =
    QCheck.Gen.(
      oneof
        [ map3 (fun off len fill -> `Write (off, len, fill)) (int_range 0 200)
            (int_range 0 60)
            (map (fun i -> Char.chr (97 + (i mod 26))) (int_range 0 25));
          map (fun size -> `Truncate size) (int_range 0 256) ])
  in
  QCheck.Test.make ~name:"extents agree with a byte-array reference" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 0 25) op_gen))
    (fun ops ->
      let reference = Bytes.make 512 '\000' in
      let ref_size = ref 0 in
      let extents = ref [] in
      List.iter
        (fun op ->
          match op with
          | `Write (off, len, fill) ->
            extents := Node.write_extents !extents ~off ~len ~fill;
            Bytes.fill reference off len fill;
            ref_size := max !ref_size (off + len)
          | `Truncate size ->
            extents := Node.truncate_extents !extents ~size;
            if size < !ref_size then
              Bytes.fill reference size (!ref_size - size) '\000';
            ref_size := size)
        ops;
      let ok = ref true in
      for i = 0 to !ref_size - 1 do
        if Node.byte_at !extents i <> Bytes.get reference i then ok := false
      done;
      (* nothing may live beyond the size *)
      List.iter
        (fun (e : Node.extent) -> if e.Node.off + e.Node.len > !ref_size then ok := false)
        !extents;
      !ok)

let test_checksum_insensitive_to_history () =
  let mk writes =
    List.fold_left
      (fun acc (off, len, fill) -> Node.write_extents acc ~off ~len ~fill)
      [] writes
  in
  let body1 = Node.Reg { extents = mk [ (0, 4, 'a'); (4, 4, 'a') ] } in
  let body2 = Node.Reg { extents = mk [ (0, 8, 'a') ] } in
  let n1 = Node.create ~ino:1 ~body:body1 ~mode:0o644 ~uid:0 ~gid:0 ~now:0 in
  let n2 = Node.create ~ino:2 ~body:body2 ~mode:0o644 ~uid:0 ~gid:0 ~now:0 in
  n1.Node.size <- 8;
  n2.Node.size <- 8;
  check_bool "equal contents hash equally" true
    (Node.content_checksum n1 = Node.content_checksum n2)

(* --- Path --- *)

let test_path_empty_is_enoent () =
  match Path.parse ~max_name_len:255 ~max_path_len:4096 "" with
  | Error Errno.ENOENT -> ()
  | _ -> Alcotest.fail "expected ENOENT"

let test_path_component_too_long () =
  match Path.parse ~max_name_len:10 ~max_path_len:4096 ("/" ^ String.make 11 'x') with
  | Error Errno.ENAMETOOLONG -> ()
  | _ -> Alcotest.fail "expected ENAMETOOLONG"

let test_path_whole_too_long () =
  match Path.parse ~max_name_len:255 ~max_path_len:10 "/aaaa/bbbb/cccc" with
  | Error Errno.ENAMETOOLONG -> ()
  | _ -> Alcotest.fail "expected ENAMETOOLONG"

let test_path_parse_shapes () =
  let p = Result.get_ok (Path.parse ~max_name_len:255 ~max_path_len:4096 "/a//b/") in
  check_bool "absolute" true p.Path.absolute;
  Alcotest.(check (list string)) "components" [ "a"; "b" ] p.Path.components;
  check_bool "trailing slash" true p.Path.trailing_slash;
  let q = Result.get_ok (Path.parse ~max_name_len:255 ~max_path_len:4096 "a/./..") in
  check_bool "relative" false q.Path.absolute;
  Alcotest.(check (list string)) "keeps dots" [ "a"; "."; ".." ] q.Path.components

let test_path_join_basename () =
  Alcotest.(check string) "join" "/a/b" (Path.join "/a" "b");
  Alcotest.(check string) "join slash" "/a/b" (Path.join "/a/" "b");
  Alcotest.(check string) "basename" "c" (Path.basename "/a/b/c");
  Alcotest.(check string) "root basename" "/" (Path.basename "/")

(* --- open --- *)

let test_open_enoent () =
  let fs = fresh () in
  expect_err "missing file" Errno.ENOENT (Fs.exec fs (Model.open_ ~flags:rdonly "/d/x"))

let test_open_creates () =
  let fs = fresh () in
  let fd = ret_fd (Fs.exec fs (Model.open_ ~mode:0o644 ~flags:creat "/d/x")) in
  check_int "first fd is 3" 3 fd;
  check_bool "file exists" true (Fs.exists fs "/d/x")

let test_open_excl () =
  let fs = fresh () in
  ignore (make_file fs "/d/x");
  expect_err "O_EXCL on existing" Errno.EEXIST
    (Fs.exec fs
       (Model.open_ ~mode:0o644 ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT; O_EXCL ]) "/d/x"))

let test_open_trunc_resets_size () =
  let fs = fresh () in
  ignore (make_file ~size:100 fs "/d/x");
  let fd =
    ret_fd
      (Fs.exec fs (Model.open_ ~flags:Open_flags.(of_flags [ O_WRONLY; O_TRUNC ]) "/d/x"))
  in
  ignore (Fs.exec fs (Model.close fd));
  check_int "size 0 after O_TRUNC" 0 (Result.get_ok (Fs.stat fs "/d/x")).Fs.st_size

let test_open_isdir () =
  let fs = fresh () in
  expect_err "write-open dir" Errno.EISDIR (Fs.exec fs (Model.open_ ~flags:wronly "/d"))

let test_open_directory_flag_on_file () =
  let fs = fresh () in
  ignore (make_file fs "/d/x");
  expect_err "O_DIRECTORY on file" Errno.ENOTDIR
    (Fs.exec fs (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY; O_DIRECTORY ]) "/d/x"))

let test_open_notdir_component () =
  let fs = fresh () in
  ignore (make_file fs "/d/x");
  expect_err "file as dir" Errno.ENOTDIR (Fs.exec fs (Model.open_ ~flags:rdonly "/d/x/y"))

let test_open_symlink_follow_and_nofollow () =
  let fs = fresh () in
  ignore (make_file ~size:5 fs "/d/real");
  ignore (Fs.exec_aux fs (Fs.Symlink ("/d/real", "/d/lnk")));
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:rdonly "/d/lnk")) in
  expect_ret "reads through link" 5 (Fs.exec fs (Model.read ~fd ~count:100 ()));
  ignore (Fs.exec fs (Model.close fd));
  expect_err "O_NOFOLLOW" Errno.ELOOP
    (Fs.exec fs (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY; O_NOFOLLOW ]) "/d/lnk"))

let test_open_symlink_loop () =
  let fs = fresh () in
  ignore (Fs.exec_aux fs (Fs.Symlink ("/d/b", "/d/a")));
  ignore (Fs.exec_aux fs (Fs.Symlink ("/d/a", "/d/b")));
  expect_err "cycle" Errno.ELOOP (Fs.exec fs (Model.open_ ~flags:rdonly "/d/a"))

let test_open_eacces () =
  let fs = fresh () in
  ignore (make_file fs "/d/secret");
  ignore (Fs.exec fs (Model.chmod ~target:(Model.Path "/d/secret") ~mode:0o600 ()));
  Fs.set_credentials fs ~uid:1000 ~gid:1000;
  expect_err "other denied" Errno.EACCES (Fs.exec fs (Model.open_ ~flags:rdonly "/d/secret"))

let test_open_eacces_traversal () =
  let fs = fresh () in
  ignore (Fs.exec fs (Model.mkdir ~mode:0o700 "/d/private"));
  ignore (make_file fs "/d/private/x");
  Fs.set_credentials fs ~uid:1000 ~gid:1000;
  expect_err "no dir exec" Errno.EACCES (Fs.exec fs (Model.open_ ~flags:rdonly "/d/private/x"))

let test_open_emfile () =
  let config = { Config.small with Config.max_open_files = 4 } in
  let fs = fresh ~config () in
  ignore (make_file fs "/d/x");
  for _ = 1 to 4 do
    ignore (ret_fd (Fs.exec fs (Model.open_ ~flags:rdonly "/d/x")))
  done;
  expect_err "fd table full" Errno.EMFILE (Fs.exec fs (Model.open_ ~flags:rdonly "/d/x"))

let test_open_enfile () =
  let fs = fresh () in
  ignore (make_file fs "/d/x");
  Fs.set_system_file_load fs (Config.default.Config.max_system_files);
  expect_err "system table full" Errno.ENFILE (Fs.exec fs (Model.open_ ~flags:rdonly "/d/x"));
  Fs.set_system_file_load fs 0

let test_open_erofs () =
  let fs = fresh () in
  ignore (make_file fs "/d/x");
  Fs.set_read_only fs true;
  expect_err "write open" Errno.EROFS (Fs.exec fs (Model.open_ ~flags:wronly "/d/x"));
  expect_err "create" Errno.EROFS (Fs.exec fs (Model.open_ ~mode:0o644 ~flags:creat "/d/new"));
  (* read-only open of an existing file still succeeds *)
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:rdonly "/d/x")) in
  ignore (Fs.exec fs (Model.close fd))

let test_open_etxtbsy () =
  let fs = fresh () in
  ignore (make_file fs "/d/prog");
  ignore (Fs.set_executing fs "/d/prog" true);
  expect_err "running binary" Errno.ETXTBSY (Fs.exec fs (Model.open_ ~flags:wronly "/d/prog"));
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:rdonly "/d/prog")) in
  ignore (Fs.exec fs (Model.close fd))

let test_open_immutable () =
  let fs = fresh () in
  ignore (make_file fs "/d/frozen");
  ignore (Fs.set_immutable fs "/d/frozen" true);
  expect_err "immutable write" Errno.EPERM (Fs.exec fs (Model.open_ ~flags:wronly "/d/frozen"))

let test_open_ebusy () =
  let fs = fresh () in
  ignore (make_file fs "/d/busy");
  ignore (Fs.set_busy fs "/d/busy" true);
  expect_err "busy" Errno.EBUSY (Fs.exec fs (Model.open_ ~flags:rdonly "/d/busy"))

let test_open_special_nodes () =
  let fs = fresh () in
  ignore (Fs.mknod_special fs "/d/fifo" `Fifo);
  ignore (Fs.mknod_special fs "/d/dev_dead" (`Device true));
  ignore (Fs.mknod_special fs "/d/dev_none" (`Device false));
  expect_err "nonblock fifo writer" Errno.ENXIO
    (Fs.exec fs (Model.open_ ~flags:Open_flags.(of_flags [ O_WRONLY; O_NONBLOCK ]) "/d/fifo"));
  expect_err "dead device" Errno.ENXIO (Fs.exec fs (Model.open_ ~flags:rdonly "/d/dev_dead"));
  expect_err "driverless device" Errno.ENODEV (Fs.exec fs (Model.open_ ~flags:rdonly "/d/dev_none"))

let test_open_eoverflow () =
  let fs = fresh () in
  ignore (make_file fs "/d/huge");
  let threshold = Config.default.Config.large_file_threshold in
  expect_ret "grow sparse" 0
    (Fs.exec fs (Model.truncate ~target:(Model.Path "/d/huge") ~length:threshold ()));
  expect_err "no O_LARGEFILE" Errno.EOVERFLOW (Fs.exec fs (Model.open_ ~flags:rdonly "/d/huge"));
  let fd =
    ret_fd
      (Fs.exec fs (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY; O_LARGEFILE ]) "/d/huge"))
  in
  ignore (Fs.exec fs (Model.close fd))

let test_open_tmpfile () =
  let fs = fresh () in
  expect_err "read-only tmpfile" Errno.EINVAL
    (Fs.exec fs (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY; O_TMPFILE ]) "/d"));
  let before = Fs.used_blocks fs in
  let fd =
    ret_fd (Fs.exec fs (Model.open_ ~mode:0o600 ~flags:Open_flags.(of_flags [ O_RDWR; O_TMPFILE ]) "/d"))
  in
  expect_ret "anonymous write" 4096 (Fs.exec fs (Model.write ~fd ~count:4096 ()));
  check_bool "no name appears" true (Result.get_ok (Fs.list_dir fs "/d") = []);
  ignore (Fs.exec fs (Model.close fd));
  check_int "blocks released at close" before (Fs.used_blocks fs)

let test_open_fd_reuse_lowest () =
  let fs = fresh () in
  ignore (make_file fs "/d/x");
  let fd1 = ret_fd (Fs.exec fs (Model.open_ ~flags:rdonly "/d/x")) in
  let fd2 = ret_fd (Fs.exec fs (Model.open_ ~flags:rdonly "/d/x")) in
  ignore (Fs.exec fs (Model.close fd1));
  let fd3 = ret_fd (Fs.exec fs (Model.open_ ~flags:rdonly "/d/x")) in
  check_int "lowest free fd reused" fd1 fd3;
  ignore (Fs.exec fs (Model.close fd2));
  ignore (Fs.exec fs (Model.close fd3))

(* --- read / write --- *)

let test_rw_roundtrip_sizes () =
  let fs = fresh () in
  let fd = ret_fd (Fs.exec fs (Model.open_ ~mode:0o644 ~flags:creat_rw "/d/f")) in
  expect_ret "write" 5000 (Fs.exec fs (Model.write ~fd ~count:5000 ()));
  expect_ret "seek home" 0 (Fs.exec fs (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_SET));
  expect_ret "read all" 5000 (Fs.exec fs (Model.read ~fd ~count:9999 ()));
  expect_ret "read at eof" 0 (Fs.exec fs (Model.read ~fd ~count:10 ()));
  ignore (Fs.exec fs (Model.close fd))

let test_read_ebadf () =
  let fs = fresh () in
  expect_err "never opened" Errno.EBADF (Fs.exec fs (Model.read ~fd:42 ~count:10 ()));
  ignore (make_file fs "/d/x");
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:wronly "/d/x")) in
  expect_err "write-only fd" Errno.EBADF (Fs.exec fs (Model.read ~fd ~count:10 ()));
  ignore (Fs.exec fs (Model.close fd))

let test_write_ebadf_on_rdonly () =
  let fs = fresh () in
  ignore (make_file fs "/d/x");
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:rdonly "/d/x")) in
  expect_err "read-only fd" Errno.EBADF (Fs.exec fs (Model.write ~fd ~count:10 ()));
  ignore (Fs.exec fs (Model.close fd))

let test_read_eisdir () =
  let fs = fresh () in
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:rdonly "/d")) in
  expect_err "read dir" Errno.EISDIR (Fs.exec fs (Model.read ~fd ~count:10 ()));
  ignore (Fs.exec fs (Model.close fd))

let test_pread_pwrite_do_not_move_offset () =
  let fs = fresh () in
  let fd = ret_fd (Fs.exec fs (Model.open_ ~mode:0o644 ~flags:creat_rw "/d/f")) in
  expect_ret "pwrite" 100
    (Fs.exec fs (Model.write ~variant:Model.Sys_pwrite64 ~offset:50 ~fd ~count:100 ()));
  expect_ret "offset still 0" 0 (Fs.exec fs (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_CUR));
  expect_ret "pread" 100
    (Fs.exec fs (Model.read ~variant:Model.Sys_pread64 ~offset:50 ~fd ~count:100 ()));
  expect_ret "offset unchanged" 0 (Fs.exec fs (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_CUR));
  ignore (Fs.exec fs (Model.close fd))

let test_pread_negative_offset () =
  let fs = fresh () in
  let fd = ret_fd (Fs.exec fs (Model.open_ ~mode:0o644 ~flags:creat_rw "/d/f")) in
  expect_err "negative pread" Errno.EINVAL
    (Fs.exec fs (Model.read ~variant:Model.Sys_pread64 ~offset:(-1) ~fd ~count:10 ()));
  expect_err "negative pwrite" Errno.EINVAL
    (Fs.exec fs (Model.write ~variant:Model.Sys_pwrite64 ~offset:(-1) ~fd ~count:10 ()));
  ignore (Fs.exec fs (Model.close fd))

let test_write_zero_keeps_offset () =
  let fs = fresh () in
  let fd = ret_fd (Fs.exec fs (Model.open_ ~mode:0o644 ~flags:creat_rw "/d/f")) in
  expect_ret "zero write" 0 (Fs.exec fs (Model.write ~fd ~count:0 ()));
  expect_ret "offset still 0" 0 (Fs.exec fs (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_CUR));
  ignore (Fs.exec fs (Model.close fd))

let test_append_mode () =
  let fs = fresh () in
  ignore (make_file ~size:100 fs "/d/f");
  let fd =
    ret_fd (Fs.exec fs (Model.open_ ~flags:Open_flags.(of_flags [ O_WRONLY; O_APPEND ]) "/d/f"))
  in
  expect_ret "append" 50 (Fs.exec fs (Model.write ~fd ~count:50 ()));
  check_int "size grew from end" 150 (Result.get_ok (Fs.stat fs "/d/f")).Fs.st_size;
  ignore (Fs.exec fs (Model.close fd))

let test_write_efbig () =
  let fs = fresh ~config:Config.small () in
  let limit = Config.small.Config.max_file_size in
  let fd = ret_fd (Fs.exec fs (Model.open_ ~mode:0o644 ~flags:creat_rw "/d/f")) in
  expect_err "write at limit" Errno.EFBIG
    (Fs.exec fs (Model.write ~variant:Model.Sys_pwrite64 ~offset:limit ~fd ~count:1 ()));
  (* a write straddling the limit is clamped to a short write *)
  expect_ret "clamped write" 1
    (Fs.exec fs (Model.write ~variant:Model.Sys_pwrite64 ~offset:(limit - 1) ~fd ~count:100 ()));
  ignore (Fs.exec fs (Model.close fd))

let test_write_enospc_and_short_write () =
  let fs = fresh ~config:Config.small () in
  (* small fs: 1024 blocks; fill it with 1MiB files *)
  let enospc = ref false in
  let n = ref 0 in
  while (not !enospc) && !n < 12 do
    incr n;
    let fd =
      ret_fd
        (Fs.exec fs (Model.open_ ~mode:0o644 ~flags:creat_rw (Printf.sprintf "/d/f%d" !n)))
    in
    (match Fs.exec fs (Model.write ~fd ~count:(1024 * 1024) ()) with
     | Model.Ret k -> if k < 1024 * 1024 then enospc := true (* short write: nearly full *)
     | Model.Err Errno.ENOSPC -> enospc := true
     | Model.Err e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
    ignore (Fs.exec fs (Model.close fd))
  done;
  check_bool "device filled" true !enospc;
  (* with zero room, a write must fail outright *)
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:wronly "/d/f1")) in
  (match Fs.exec fs (Model.write ~variant:Model.Sys_pwrite64 ~offset:(1024 * 1024 - 1) ~fd ~count:1 ()) with
   | Model.Ret 1 -> () (* last byte still fit inside an allocated block *)
   | Model.Ret n -> Alcotest.failf "unexpected short %d" n
   | Model.Err Errno.ENOSPC -> ()
   | Model.Err e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
  ignore (Fs.exec fs (Model.close fd))

let test_write_edquot () =
  let fs = fresh ~config:Config.small () in
  ignore (Fs.exec fs (Model.chmod ~target:(Model.Path "/d") ~mode:0o777 ()));
  Fs.set_credentials fs ~uid:1000 ~gid:1000;
  (* quota 512 blocks = 2 MiB; third 1MiB file hits it *)
  let hit = ref false in
  let n = ref 0 in
  while (not !hit) && !n < 6 do
    incr n;
    match Fs.exec fs (Model.open_ ~mode:0o644 ~flags:creat_rw (Printf.sprintf "/d/q%d" !n)) with
    | Model.Ret fd ->
      (match Fs.exec fs (Model.write ~fd ~count:(1024 * 1024) ()) with
       | Model.Err Errno.EDQUOT -> hit := true
       | Model.Ret _ -> ()
       | Model.Err e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
      ignore (Fs.exec fs (Model.close fd))
    | Model.Err Errno.EDQUOT -> hit := true
    | Model.Err e -> Alcotest.failf "unexpected open error %s" (Errno.to_string e)
  done;
  check_bool "quota enforced" true !hit;
  Fs.set_credentials fs ~uid:0 ~gid:0

let test_fifo_rw_nonblock () =
  let fs = fresh () in
  ignore (Fs.mknod_special fs "/d/p" `Fifo);
  let fd =
    ret_fd (Fs.exec fs (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY; O_NONBLOCK ]) "/d/p"))
  in
  expect_err "empty fifo" Errno.EAGAIN (Fs.exec fs (Model.read ~fd ~count:10 ()));
  ignore (Fs.exec fs (Model.close fd))

(* --- lseek --- *)

let test_lseek_whences () =
  let fs = fresh () in
  ignore (make_file ~size:1000 fs "/d/f");
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:rdonly "/d/f")) in
  expect_ret "SET" 10 (Fs.exec fs (Model.lseek ~fd ~offset:10 ~whence:Whence.SEEK_SET));
  expect_ret "CUR" 15 (Fs.exec fs (Model.lseek ~fd ~offset:5 ~whence:Whence.SEEK_CUR));
  expect_ret "END" 990 (Fs.exec fs (Model.lseek ~fd ~offset:(-10) ~whence:Whence.SEEK_END));
  expect_ret "past EOF is fine" 2000 (Fs.exec fs (Model.lseek ~fd ~offset:2000 ~whence:Whence.SEEK_SET));
  expect_err "negative target" Errno.EINVAL
    (Fs.exec fs (Model.lseek ~fd ~offset:(-1) ~whence:Whence.SEEK_SET));
  expect_err "overflow" Errno.EOVERFLOW
    (Fs.exec fs (Model.lseek ~fd ~offset:(1 lsl 61) ~whence:Whence.SEEK_SET));
  ignore (Fs.exec fs (Model.close fd))

let test_lseek_data_hole () =
  let fs = fresh () in
  let fd = ret_fd (Fs.exec fs (Model.open_ ~mode:0o644 ~flags:creat_rw "/d/sparse")) in
  expect_ret "data write" 4096
    (Fs.exec fs (Model.write ~variant:Model.Sys_pwrite64 ~offset:8192 ~fd ~count:4096 ()));
  expect_ret "grow" 0 (Fs.exec fs (Model.truncate ~target:(Model.Fd fd) ~length:65536 ()));
  expect_ret "DATA from 0" 8192 (Fs.exec fs (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_DATA));
  expect_ret "HOLE at 0" 0 (Fs.exec fs (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_HOLE));
  expect_ret "HOLE in data" 12288
    (Fs.exec fs (Model.lseek ~fd ~offset:8192 ~whence:Whence.SEEK_HOLE));
  expect_err "DATA past data" Errno.ENXIO
    (Fs.exec fs (Model.lseek ~fd ~offset:12288 ~whence:Whence.SEEK_DATA));
  expect_err "DATA past EOF" Errno.ENXIO
    (Fs.exec fs (Model.lseek ~fd ~offset:70000 ~whence:Whence.SEEK_DATA));
  ignore (Fs.exec fs (Model.close fd))

let test_lseek_espipe () =
  let fs = fresh () in
  ignore (Fs.mknod_special fs "/d/p" `Fifo);
  let fd =
    ret_fd (Fs.exec fs (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY; O_NONBLOCK ]) "/d/p"))
  in
  expect_err "seek on fifo" Errno.ESPIPE
    (Fs.exec fs (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_SET));
  ignore (Fs.exec fs (Model.close fd))

(* --- truncate --- *)

let test_truncate_semantics () =
  let fs = fresh () in
  ignore (make_file ~size:1000 fs "/d/f");
  expect_ret "shrink" 0 (Fs.exec fs (Model.truncate ~target:(Model.Path "/d/f") ~length:10 ()));
  check_int "shrunk" 10 (Result.get_ok (Fs.stat fs "/d/f")).Fs.st_size;
  expect_ret "grow leaves hole" 0
    (Fs.exec fs (Model.truncate ~target:(Model.Path "/d/f") ~length:100 ()));
  check_int "grown" 100 (Result.get_ok (Fs.stat fs "/d/f")).Fs.st_size;
  Alcotest.(check char) "hole reads zero" '\000' (Result.get_ok (Fs.read_byte fs "/d/f" 50));
  expect_err "negative" Errno.EINVAL
    (Fs.exec fs (Model.truncate ~target:(Model.Path "/d/f") ~length:(-1) ()));
  expect_err "dir" Errno.EISDIR (Fs.exec fs (Model.truncate ~target:(Model.Path "/d") ~length:0 ()));
  expect_err "missing" Errno.ENOENT
    (Fs.exec fs (Model.truncate ~target:(Model.Path "/d/none") ~length:0 ()))

let test_truncate_efbig_boundary () =
  let fs = fresh ~config:Config.small () in
  ignore (make_file fs "/d/f");
  let limit = Config.small.Config.max_file_size in
  expect_ret "exactly the limit" 0
    (Fs.exec fs (Model.truncate ~target:(Model.Path "/d/f") ~length:limit ()));
  expect_err "one past the limit" Errno.EFBIG
    (Fs.exec fs (Model.truncate ~target:(Model.Path "/d/f") ~length:(limit + 1) ()))

let test_ftruncate_needs_writable_fd () =
  let fs = fresh () in
  ignore (make_file ~size:10 fs "/d/f");
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:rdonly "/d/f")) in
  expect_err "read-only fd" Errno.EINVAL (Fs.exec fs (Model.truncate ~target:(Model.Fd fd) ~length:0 ()));
  ignore (Fs.exec fs (Model.close fd));
  expect_err "stale fd" Errno.EBADF (Fs.exec fs (Model.truncate ~target:(Model.Fd 99) ~length:0 ()))

let test_truncate_releases_blocks () =
  let fs = fresh () in
  let before = Fs.used_blocks fs in
  ignore (make_file ~size:(1024 * 1024) fs "/d/f");
  check_bool "blocks charged" true (Fs.used_blocks fs > before);
  expect_ret "truncate" 0 (Fs.exec fs (Model.truncate ~target:(Model.Path "/d/f") ~length:0 ()));
  check_int "only inode remains" (before + 1) (Fs.used_blocks fs)

(* --- mkdir / chmod / chdir / close --- *)

let test_mkdir_semantics () =
  let fs = fresh () in
  expect_ret "mkdir" 0 (Fs.exec fs (Model.mkdir ~mode:0o750 "/d/sub"));
  check_bool "exists" true (Fs.exists fs "/d/sub");
  check_int "mode stored" 0o750 (Result.get_ok (Fs.stat fs "/d/sub")).Fs.st_mode;
  expect_err "again" Errno.EEXIST (Fs.exec fs (Model.mkdir ~mode:0o755 "/d/sub"));
  expect_err "missing parent" Errno.ENOENT (Fs.exec fs (Model.mkdir ~mode:0o755 "/d/no/sub"));
  expect_err "bad mode" Errno.EINVAL (Fs.exec fs (Model.mkdir ~mode:0o777777 "/d/bad"));
  ignore (make_file fs "/d/file");
  expect_err "under a file" Errno.ENOTDIR (Fs.exec fs (Model.mkdir ~mode:0o755 "/d/file/sub"))

let test_mkdir_nlink_and_dotdot () =
  let fs = fresh () in
  let before = (Result.get_ok (Fs.stat fs "/d")).Fs.st_nlink in
  ignore (Fs.exec fs (Model.mkdir ~mode:0o755 "/d/sub"));
  check_int "parent nlink grows" (before + 1) (Result.get_ok (Fs.stat fs "/d")).Fs.st_nlink;
  (* .. resolves to the parent *)
  check_int "dot-dot" (Result.get_ok (Fs.stat fs "/d")).Fs.st_ino
    (Result.get_ok (Fs.stat fs "/d/sub/..")).Fs.st_ino

let test_chmod_semantics () =
  let fs = fresh () in
  ignore (make_file fs "/d/f");
  expect_ret "chmod" 0 (Fs.exec fs (Model.chmod ~target:(Model.Path "/d/f") ~mode:0o4711 ()));
  check_int "mode" 0o4711 (Result.get_ok (Fs.stat fs "/d/f")).Fs.st_mode;
  expect_err "bad mode" Errno.EINVAL
    (Fs.exec fs (Model.chmod ~target:(Model.Path "/d/f") ~mode:0o200000 ()));
  Fs.set_credentials fs ~uid:1000 ~gid:1000;
  expect_err "non-owner" Errno.EPERM
    (Fs.exec fs (Model.chmod ~target:(Model.Path "/d/f") ~mode:0o777 ()));
  Fs.set_credentials fs ~uid:0 ~gid:0;
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:rdonly "/d/f")) in
  expect_ret "fchmod" 0 (Fs.exec fs (Model.chmod ~target:(Model.Fd fd) ~mode:0o600 ()));
  ignore (Fs.exec fs (Model.close fd))

let test_owner_may_chmod_own_file () =
  let fs = fresh () in
  ignore (Fs.exec fs (Model.chmod ~target:(Model.Path "/d") ~mode:0o777 ()));
  Fs.set_credentials fs ~uid:1000 ~gid:1000;
  ignore (make_file fs "/d/mine");
  expect_ret "owner chmod" 0 (Fs.exec fs (Model.chmod ~target:(Model.Path "/d/mine") ~mode:0o600 ()));
  Fs.set_credentials fs ~uid:0 ~gid:0

let test_chdir_semantics () =
  let fs = fresh () in
  ignore (Fs.exec fs (Model.mkdir ~mode:0o755 "/d/sub"));
  ignore (make_file fs "/d/sub/inside");
  expect_ret "chdir" 0 (Fs.exec fs (Model.chdir (Model.Path "/d/sub")));
  (* relative resolution now starts at /d/sub *)
  check_bool "relative lookup" true (Fs.exists fs "inside");
  expect_err "chdir to file" Errno.ENOTDIR (Fs.exec fs (Model.chdir (Model.Path "inside")));
  expect_err "chdir missing" Errno.ENOENT (Fs.exec fs (Model.chdir (Model.Path "/nope")));
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:rdonly "/d")) in
  expect_ret "fchdir" 0 (Fs.exec fs (Model.chdir (Model.Fd fd)));
  check_bool "fchdir moved" true (Fs.exists fs "sub");
  ignore (Fs.exec fs (Model.close fd))

let test_close_semantics () =
  let fs = fresh () in
  ignore (make_file fs "/d/f");
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:rdonly "/d/f")) in
  expect_ret "close" 0 (Fs.exec fs (Model.close fd));
  expect_err "double close" Errno.EBADF (Fs.exec fs (Model.close fd));
  expect_err "never opened" Errno.EBADF (Fs.exec fs (Model.close 77))

let test_unlinked_file_lives_until_close () =
  let fs = fresh () in
  ignore (make_file ~size:4096 fs "/d/f");
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:rdonly "/d/f")) in
  (match Fs.exec_aux fs (Fs.Unlink "/d/f") with Ok _ -> () | Error _ -> Alcotest.fail "unlink");
  check_bool "name gone" false (Fs.exists fs "/d/f");
  expect_ret "still readable" 4096 (Fs.exec fs (Model.read ~fd ~count:9999 ()));
  let used = Fs.used_blocks fs in
  expect_ret "close frees" 0 (Fs.exec fs (Model.close fd));
  check_bool "blocks released" true (Fs.used_blocks fs < used)

(* --- xattr --- *)

let test_xattr_cycle () =
  let fs = fresh () in
  ignore (make_file fs "/d/f");
  let t = Model.Path "/d/f" in
  expect_ret "set" 0 (Fs.exec fs (Model.setxattr ~target:t ~name:"user.a" ~size:100 ()));
  expect_ret "get" 100 (Fs.exec fs (Model.getxattr ~target:t ~name:"user.a" ~size:4096 ()));
  expect_ret "size query" 100 (Fs.exec fs (Model.getxattr ~target:t ~name:"user.a" ~size:0 ()));
  expect_err "short buffer" Errno.ERANGE
    (Fs.exec fs (Model.getxattr ~target:t ~name:"user.a" ~size:99 ()));
  expect_err "missing" Errno.ENODATA
    (Fs.exec fs (Model.getxattr ~target:t ~name:"user.b" ~size:10 ()));
  expect_err "create dup" Errno.EEXIST
    (Fs.exec fs (Model.setxattr ~flags:Xattr_flag.XATTR_CREATE ~target:t ~name:"user.a" ~size:1 ()));
  expect_err "replace missing" Errno.ENODATA
    (Fs.exec fs (Model.setxattr ~flags:Xattr_flag.XATTR_REPLACE ~target:t ~name:"user.b" ~size:1 ()));
  expect_ret "replace" 0
    (Fs.exec fs (Model.setxattr ~flags:Xattr_flag.XATTR_REPLACE ~target:t ~name:"user.a" ~size:7 ()));
  expect_ret "new size" 7 (Fs.exec fs (Model.getxattr ~target:t ~name:"user.a" ~size:0 ()))

let test_xattr_limits () =
  let fs = fresh () in
  ignore (make_file fs "/d/f");
  let t = Model.Path "/d/f" in
  let max = Config.default.Config.max_xattr_value in
  expect_err "E2BIG" Errno.E2BIG
    (Fs.exec fs (Model.setxattr ~target:t ~name:"user.big" ~size:(max + 1) ()));
  expect_err "no space in inode" Errno.ENOSPC
    (Fs.exec fs (Model.setxattr ~target:t ~name:"user.max" ~size:max ()));
  expect_err "bad name" Errno.EINVAL
    (Fs.exec fs (Model.setxattr ~target:t ~name:"noprefix" ~size:4 ()));
  expect_err "system namespace" Errno.ENOTSUP
    (Fs.exec fs (Model.setxattr ~target:t ~name:"system.acl" ~size:4 ()));
  Fs.set_credentials fs ~uid:1000 ~gid:1000;
  expect_err "trusted needs root" Errno.EPERM
    (Fs.exec fs (Model.setxattr ~target:t ~name:"trusted.t" ~size:4 ()));
  Fs.set_credentials fs ~uid:0 ~gid:0

let test_xattr_space_exhaustion () =
  let fs = fresh () in
  ignore (make_file fs "/d/f");
  let t = Model.Path "/d/f" in
  (* xattr_space 4096: a few 1KiB values fill it *)
  let hit = ref false in
  for i = 1 to 8 do
    if not !hit then
      match Fs.exec fs (Model.setxattr ~target:t ~name:(Printf.sprintf "user.v%d" i) ~size:1024 ()) with
      | Model.Err Errno.ENOSPC -> hit := true
      | Model.Ret _ -> ()
      | Model.Err e -> Alcotest.failf "unexpected %s" (Errno.to_string e)
  done;
  check_bool "inode xattr space exhausted" true !hit

let test_lxattr_on_symlink () =
  let fs = fresh () in
  ignore (make_file fs "/d/real");
  ignore (Fs.exec_aux fs (Fs.Symlink ("/d/real", "/d/lnk")));
  expect_ret "lsetxattr on the link" 0
    (Fs.exec fs
       (Model.setxattr ~variant:Model.Sys_lsetxattr ~target:(Model.Path "/d/lnk")
          ~name:"user.l" ~size:3 ()));
  expect_err "plain getxattr follows" Errno.ENODATA
    (Fs.exec fs (Model.getxattr ~target:(Model.Path "/d/lnk") ~name:"user.l" ~size:64 ()));
  expect_ret "lgetxattr sees it" 3
    (Fs.exec fs
       (Model.getxattr ~variant:Model.Sys_lgetxattr ~target:(Model.Path "/d/lnk")
          ~name:"user.l" ~size:64 ()))

(* --- aux ops --- *)

let test_unlink_rmdir () =
  let fs = fresh () in
  ignore (make_file fs "/d/f");
  ignore (Fs.exec fs (Model.mkdir ~mode:0o755 "/d/sub"));
  check_bool "unlink dir is EISDIR" true (Fs.exec_aux fs (Fs.Unlink "/d/sub") = Error Errno.EISDIR);
  check_bool "rmdir file is ENOTDIR" true (Fs.exec_aux fs (Fs.Rmdir "/d/f") = Error Errno.ENOTDIR);
  ignore (make_file fs "/d/sub/x");
  check_bool "rmdir non-empty" true (Fs.exec_aux fs (Fs.Rmdir "/d/sub") = Error Errno.ENOTEMPTY);
  check_bool "unlink inside" true (Fs.exec_aux fs (Fs.Unlink "/d/sub/x") = Ok 0);
  check_bool "rmdir now" true (Fs.exec_aux fs (Fs.Rmdir "/d/sub") = Ok 0);
  check_bool "unlink file" true (Fs.exec_aux fs (Fs.Unlink "/d/f") = Ok 0);
  check_bool "unlink again" true (Fs.exec_aux fs (Fs.Unlink "/d/f") = Error Errno.ENOENT)

let test_rmdir_cwd_busy () =
  let fs = fresh () in
  ignore (Fs.exec fs (Model.mkdir ~mode:0o755 "/d/sub"));
  ignore (Fs.exec fs (Model.chdir (Model.Path "/d/sub")));
  check_bool "rmdir cwd" true (Fs.exec_aux fs (Fs.Rmdir "/d/sub") = Error Errno.EBUSY);
  ignore (Fs.exec fs (Model.chdir (Model.Path "/")))

let test_rename () =
  let fs = fresh () in
  ignore (make_file ~size:10 fs "/d/a");
  check_bool "rename" true (Fs.exec_aux fs (Fs.Rename ("/d/a", "/d/b")) = Ok 0);
  check_bool "a gone" false (Fs.exists fs "/d/a");
  check_bool "b exists" true (Fs.exists fs "/d/b");
  check_int "content moved" 10 (Result.get_ok (Fs.stat fs "/d/b")).Fs.st_size;
  (* rename over an existing file replaces it *)
  ignore (make_file ~size:99 fs "/d/c");
  check_bool "replace" true (Fs.exec_aux fs (Fs.Rename ("/d/b", "/d/c")) = Ok 0);
  check_int "replaced content" 10 (Result.get_ok (Fs.stat fs "/d/c")).Fs.st_size;
  (* dir over file mismatches *)
  ignore (Fs.exec fs (Model.mkdir ~mode:0o755 "/d/dir"));
  check_bool "file over dir" true (Fs.exec_aux fs (Fs.Rename ("/d/c", "/d/dir")) = Error Errno.EISDIR);
  check_bool "dir over file" true (Fs.exec_aux fs (Fs.Rename ("/d/dir", "/d/c")) = Error Errno.ENOTDIR)

let test_rename_into_own_subtree () =
  let fs = fresh () in
  ignore (Fs.exec fs (Model.mkdir ~mode:0o755 "/d/sub"));
  ignore (Fs.exec fs (Model.mkdir ~mode:0o755 "/d/sub/deep"));
  check_bool "direct child" true
    (Fs.exec_aux fs (Fs.Rename ("/d", "/d/into")) = Error Errno.EINVAL);
  check_bool "deeper descendant" true
    (Fs.exec_aux fs (Fs.Rename ("/d/sub", "/d/sub/deep/x")) = Error Errno.EINVAL);
  check_bool "onto itself is a no-op" true (Fs.exec_aux fs (Fs.Rename ("/d/sub", "/d/sub")) = Ok 0);
  check_bool "sibling move still fine" true
    (Fs.exec_aux fs (Fs.Rename ("/d/sub/deep", "/d/deep")) = Ok 0);
  check_bool "tree intact" true (Fs.exists fs "/d/sub" && Fs.exists fs "/d/deep")

let test_open_trailing_slash () =
  let fs = fresh () in
  ignore (make_file fs "/d/file");
  expect_err "open file/" Errno.ENOTDIR (Fs.exec fs (Model.open_ ~flags:rdonly "/d/file/"));
  expect_err "creat x/" Errno.EISDIR
    (Fs.exec fs (Model.open_ ~mode:0o644 ~flags:creat "/d/new/"));
  (* a directory with a trailing slash opens fine *)
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:rdonly "/d/")) in
  ignore (Fs.exec fs (Model.close fd))

let test_link_semantics () =
  let fs = fresh () in
  ignore (make_file ~size:7 fs "/d/a");
  check_bool "link" true (Fs.exec_aux fs (Fs.Link ("/d/a", "/d/b")) = Ok 0);
  check_int "nlink 2" 2 (Result.get_ok (Fs.stat fs "/d/a")).Fs.st_nlink;
  check_bool "same inode" true
    ((Result.get_ok (Fs.stat fs "/d/a")).Fs.st_ino = (Result.get_ok (Fs.stat fs "/d/b")).Fs.st_ino);
  check_bool "link to dir" true (Fs.exec_aux fs (Fs.Link ("/d", "/d2")) = Error Errno.EPERM);
  check_bool "link over existing" true (Fs.exec_aux fs (Fs.Link ("/d/a", "/d/b")) = Error Errno.EEXIST);
  check_bool "unlink one name" true (Fs.exec_aux fs (Fs.Unlink "/d/a") = Ok 0);
  check_int "content survives" 7 (Result.get_ok (Fs.stat fs "/d/b")).Fs.st_size

let test_hard_link_aliases_content () =
  let fs = fresh () in
  ignore (make_file ~size:10 fs "/d/a");
  ignore (Fs.exec_aux fs (Fs.Link ("/d/a", "/d/alias")));
  (* a write through one name is visible through the other *)
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:rdwr "/d/a")) in
  expect_ret "grow via /d/a" 5000
    (Fs.exec fs (Model.write ~variant:Model.Sys_pwrite64 ~offset:0 ~fd ~count:5000 ()));
  ignore (Fs.exec fs (Model.close fd));
  check_int "size via alias" 5000 (Result.get_ok (Fs.stat fs "/d/alias")).Fs.st_size;
  check_int "identical content" (Result.get_ok (Fs.checksum fs "/d/a"))
    (Result.get_ok (Fs.checksum fs "/d/alias"));
  (* chmod through the alias affects the shared inode *)
  expect_ret "chmod alias" 0 (Fs.exec fs (Model.chmod ~target:(Model.Path "/d/alias") ~mode:0o600 ()));
  check_int "mode via original" 0o600 (Result.get_ok (Fs.stat fs "/d/a")).Fs.st_mode

let test_sticky_deletion () =
  let fs = fresh () in
  ignore (Fs.exec fs (Model.mkdir ~mode:0o1777 "/d/tmp"));
  Fs.set_credentials fs ~uid:1001 ~gid:1001;
  ignore (make_file fs "/d/tmp/owned");
  Fs.set_credentials fs ~uid:1002 ~gid:1002;
  check_bool "stranger blocked" true
    (Fs.exec_aux fs (Fs.Unlink "/d/tmp/owned") = Error Errno.EPERM);
  Fs.set_credentials fs ~uid:1001 ~gid:1001;
  check_bool "owner may delete" true (Fs.exec_aux fs (Fs.Unlink "/d/tmp/owned") = Ok 0);
  Fs.set_credentials fs ~uid:0 ~gid:0

let test_injection () =
  let fs = fresh () in
  ignore (make_file fs "/d/f");
  Fs.inject_errno fs ~base:Model.Open Errno.EINTR;
  expect_err "injected open" Errno.EINTR (Fs.exec fs (Model.open_ ~flags:rdonly "/d/f"));
  (* consumed: next open succeeds *)
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:rdonly "/d/f")) in
  (* base-specific injection does not fire for other syscalls *)
  Fs.inject_errno fs ~base:Model.Write Errno.EFAULT;
  expect_ret "read unaffected" 0 (Fs.exec fs (Model.read ~fd ~count:4 ()));
  ignore (Fs.exec fs (Model.close fd));
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:wronly "/d/f")) in
  expect_err "write takes the injection" Errno.EFAULT (Fs.exec fs (Model.write ~fd ~count:4 ()));
  ignore (Fs.exec fs (Model.close fd))

(* Exhaustive permission matrix: every 9-bit rwx mode, every principal
   class (owner / group / other), every open access mode — 4,608 checks
   against the POSIX rule computed independently. *)
let test_permission_matrix () =
  let accmodes =
    [ (rdonly, true, false); (wronly, false, true); (rdwr, true, true) ]
  in
  let principals =
    [ (`Owner, 1000, 1000); (`Group, 2000, 1000); (`Other, 2000, 2000) ]
  in
  for mode = 0 to 0o777 do
    let fs = fresh () in
    ignore (Fs.exec fs (Model.chmod ~target:(Model.Path "/d") ~mode:0o777 ()));
    Fs.set_credentials fs ~uid:1000 ~gid:1000;
    ignore (make_file fs "/d/f");
    ignore (Fs.exec fs (Model.chmod ~target:(Model.Path "/d/f") ~mode ()));
    List.iter
      (fun (who, uid, gid) ->
        Fs.set_credentials fs ~uid ~gid;
        List.iter
          (fun (flags, needs_r, needs_w) ->
            let shift = match who with `Owner -> 6 | `Group -> 3 | `Other -> 0 in
            let can_r = (mode lsr shift) land 0o4 <> 0 in
            let can_w = (mode lsr shift) land 0o2 <> 0 in
            let expected_ok = ((not needs_r) || can_r) && ((not needs_w) || can_w) in
            match Fs.exec fs (Model.open_ ~flags "/d/f") with
            | Model.Ret fd ->
              if not expected_ok then
                Alcotest.failf "mode %o, %s: open should have been denied" mode
                  (Open_flags.to_string flags);
              ignore (Fs.exec fs (Model.close fd))
            | Model.Err Errno.EACCES ->
              if expected_ok then
                Alcotest.failf "mode %o, %s: open should have been allowed" mode
                  (Open_flags.to_string flags)
            | Model.Err e -> Alcotest.failf "unexpected %s" (Errno.to_string e))
          accmodes)
      principals
  done

(* root bypasses permission bits entirely *)
let test_root_bypasses_permissions () =
  let fs = fresh () in
  ignore (make_file fs "/d/f");
  ignore (Fs.exec fs (Model.chmod ~target:(Model.Path "/d/f") ~mode:0 ()));
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:rdwr "/d/f")) in
  ignore (Fs.exec fs (Model.close fd))

let test_block_accounting_invariant () =
  (* used blocks never exceeds capacity and returns to baseline after
     deleting everything *)
  let fs = fresh ~config:Config.small () in
  let baseline = Fs.used_blocks fs in
  for i = 1 to 10 do
    ignore (make_file ~size:(i * 10_000 mod 300_000) fs (Printf.sprintf "/d/f%d" i))
  done;
  check_bool "capacity respected" true (Fs.used_blocks fs <= Config.small.Config.total_blocks);
  for i = 1 to 10 do
    ignore (Fs.exec_aux fs (Fs.Unlink (Printf.sprintf "/d/f%d" i)))
  done;
  check_int "all released" baseline (Fs.used_blocks fs)

let suites =
  [ ( "vfs.extents",
      [ Alcotest.test_case "empty segments" `Quick test_extents_empty_segments;
        Alcotest.test_case "write then read" `Quick test_extents_write_then_read;
        Alcotest.test_case "overwrite splits" `Quick test_extents_overwrite_splits;
        Alcotest.test_case "truncate" `Quick test_extents_truncate;
        Alcotest.test_case "next data/hole" `Quick test_extents_next_data_hole;
        Alcotest.test_case "zero write identity" `Quick test_extents_zero_write_identity;
        Alcotest.test_case "checksum history-insensitive" `Quick
          test_checksum_insensitive_to_history;
        QCheck_alcotest.to_alcotest extents_match_reference_prop ] );
    ( "vfs.path",
      [ Alcotest.test_case "empty is ENOENT" `Quick test_path_empty_is_enoent;
        Alcotest.test_case "component too long" `Quick test_path_component_too_long;
        Alcotest.test_case "whole path too long" `Quick test_path_whole_too_long;
        Alcotest.test_case "parse shapes" `Quick test_path_parse_shapes;
        Alcotest.test_case "join and basename" `Quick test_path_join_basename ] );
    ( "vfs.open",
      [ Alcotest.test_case "ENOENT" `Quick test_open_enoent;
        Alcotest.test_case "creates" `Quick test_open_creates;
        Alcotest.test_case "O_EXCL" `Quick test_open_excl;
        Alcotest.test_case "O_TRUNC" `Quick test_open_trunc_resets_size;
        Alcotest.test_case "EISDIR" `Quick test_open_isdir;
        Alcotest.test_case "O_DIRECTORY on file" `Quick test_open_directory_flag_on_file;
        Alcotest.test_case "ENOTDIR component" `Quick test_open_notdir_component;
        Alcotest.test_case "symlink follow / O_NOFOLLOW" `Quick
          test_open_symlink_follow_and_nofollow;
        Alcotest.test_case "ELOOP cycle" `Quick test_open_symlink_loop;
        Alcotest.test_case "EACCES on node" `Quick test_open_eacces;
        Alcotest.test_case "EACCES on traversal" `Quick test_open_eacces_traversal;
        Alcotest.test_case "EMFILE" `Quick test_open_emfile;
        Alcotest.test_case "ENFILE" `Quick test_open_enfile;
        Alcotest.test_case "EROFS" `Quick test_open_erofs;
        Alcotest.test_case "ETXTBSY" `Quick test_open_etxtbsy;
        Alcotest.test_case "immutable EPERM" `Quick test_open_immutable;
        Alcotest.test_case "EBUSY" `Quick test_open_ebusy;
        Alcotest.test_case "special nodes" `Quick test_open_special_nodes;
        Alcotest.test_case "EOVERFLOW / O_LARGEFILE" `Quick test_open_eoverflow;
        Alcotest.test_case "O_TMPFILE" `Quick test_open_tmpfile;
        Alcotest.test_case "fd reuse lowest" `Quick test_open_fd_reuse_lowest ] );
    ( "vfs.rw",
      [ Alcotest.test_case "roundtrip sizes" `Quick test_rw_roundtrip_sizes;
        Alcotest.test_case "read EBADF" `Quick test_read_ebadf;
        Alcotest.test_case "write EBADF on O_RDONLY" `Quick test_write_ebadf_on_rdonly;
        Alcotest.test_case "read EISDIR" `Quick test_read_eisdir;
        Alcotest.test_case "pread/pwrite keep offset" `Quick test_pread_pwrite_do_not_move_offset;
        Alcotest.test_case "negative p-offsets" `Quick test_pread_negative_offset;
        Alcotest.test_case "zero write keeps offset" `Quick test_write_zero_keeps_offset;
        Alcotest.test_case "O_APPEND" `Quick test_append_mode;
        Alcotest.test_case "EFBIG" `Quick test_write_efbig;
        Alcotest.test_case "ENOSPC and short writes" `Quick test_write_enospc_and_short_write;
        Alcotest.test_case "EDQUOT" `Quick test_write_edquot;
        Alcotest.test_case "fifo EAGAIN" `Quick test_fifo_rw_nonblock ] );
    ( "vfs.lseek",
      [ Alcotest.test_case "whences" `Quick test_lseek_whences;
        Alcotest.test_case "SEEK_DATA/SEEK_HOLE" `Quick test_lseek_data_hole;
        Alcotest.test_case "ESPIPE" `Quick test_lseek_espipe ] );
    ( "vfs.truncate",
      [ Alcotest.test_case "semantics" `Quick test_truncate_semantics;
        Alcotest.test_case "EFBIG boundary" `Quick test_truncate_efbig_boundary;
        Alcotest.test_case "ftruncate fd checks" `Quick test_ftruncate_needs_writable_fd;
        Alcotest.test_case "releases blocks" `Quick test_truncate_releases_blocks ] );
    ( "vfs.metadata",
      [ Alcotest.test_case "mkdir semantics" `Quick test_mkdir_semantics;
        Alcotest.test_case "mkdir nlink and dotdot" `Quick test_mkdir_nlink_and_dotdot;
        Alcotest.test_case "chmod semantics" `Quick test_chmod_semantics;
        Alcotest.test_case "owner chmod" `Quick test_owner_may_chmod_own_file;
        Alcotest.test_case "chdir semantics" `Quick test_chdir_semantics;
        Alcotest.test_case "close semantics" `Quick test_close_semantics;
        Alcotest.test_case "unlinked file lives until close" `Quick
          test_unlinked_file_lives_until_close ] );
    ( "vfs.xattr",
      [ Alcotest.test_case "cycle" `Quick test_xattr_cycle;
        Alcotest.test_case "limits" `Quick test_xattr_limits;
        Alcotest.test_case "space exhaustion" `Quick test_xattr_space_exhaustion;
        Alcotest.test_case "l-variants on symlink" `Quick test_lxattr_on_symlink ] );
    ( "vfs.aux",
      [ Alcotest.test_case "unlink/rmdir" `Quick test_unlink_rmdir;
        Alcotest.test_case "rmdir cwd is EBUSY" `Quick test_rmdir_cwd_busy;
        Alcotest.test_case "rename" `Quick test_rename;
        Alcotest.test_case "rename into own subtree" `Quick test_rename_into_own_subtree;
        Alcotest.test_case "open trailing slash" `Quick test_open_trailing_slash;
        Alcotest.test_case "link" `Quick test_link_semantics;
        Alcotest.test_case "hard link aliases content" `Quick test_hard_link_aliases_content;
        Alcotest.test_case "sticky deletion" `Quick test_sticky_deletion;
        Alcotest.test_case "errno injection" `Quick test_injection;
        Alcotest.test_case "permission matrix (4608 cases)" `Slow test_permission_matrix;
        Alcotest.test_case "root bypasses permissions" `Quick test_root_bypasses_permissions;
        Alcotest.test_case "block accounting" `Quick test_block_accounting_invariant ] ) ]
