(* Model-based testing of the file system: a random sequence of syscalls
   is executed both on Iocov_vfs.Fs and on an independent, deliberately
   naive reference specification (flat namespace, plain files, offset and
   size arithmetic only).  Every predicted outcome must match exactly.

   This is the strongest correctness argument the substrate has: the spec
   is simple enough to be obviously right in its restricted domain, and
   the generator stays inside that domain. *)

open Iocov_syscall
module Fs = Iocov_vfs.Fs

(* --- the reference specification --- *)

module Spec = struct
  type file = { mutable size : int }

  type open_file = {
    path : string;
    mutable offset : int;
    readable : bool;
    writable : bool;
    append : bool;
  }

  type t = {
    files : (string, file) Hashtbl.t;
    fds : (int, open_file) Hashtbl.t;
    mutable next_fd : int;
  }

  let create () = { files = Hashtbl.create 8; fds = Hashtbl.create 8; next_fd = 3 }

  let alloc_fd t =
    (* mirror the kernel's lowest-free rule *)
    let rec go fd = if Hashtbl.mem t.fds fd then go (fd + 1) else fd in
    let fd = go 3 in
    t.next_fd <- fd + 1;
    fd

  let open_ t path flags =
    let creat = Open_flags.has flags Open_flags.O_CREAT in
    let trunc = Open_flags.has flags Open_flags.O_TRUNC in
    let excl = Open_flags.has flags Open_flags.O_EXCL in
    let writable = Open_flags.writable flags in
    match Hashtbl.find_opt t.files path with
    | None when not creat -> Model.Err Errno.ENOENT
    | None ->
      Hashtbl.add t.files path { size = 0 };
      let fd = alloc_fd t in
      Hashtbl.add t.fds fd
        { path; offset = 0; readable = Open_flags.readable flags; writable;
          append = Open_flags.has flags Open_flags.O_APPEND };
      Model.Ret fd
    | Some file ->
      if creat && excl then Model.Err Errno.EEXIST
      else begin
        if trunc && writable then file.size <- 0;
        let fd = alloc_fd t in
        Hashtbl.add t.fds fd
          { path; offset = 0; readable = Open_flags.readable flags; writable;
            append = Open_flags.has flags Open_flags.O_APPEND };
        Model.Ret fd
      end

  let file_of_fd t fd =
    match Hashtbl.find_opt t.fds fd with
    | None -> None
    | Some opened -> Some (opened, Hashtbl.find t.files opened.path)

  let write t fd count offset =
    match file_of_fd t fd with
    | None -> Model.Err Errno.EBADF
    | Some (opened, file) ->
      if not opened.writable then Model.Err Errno.EBADF
      else if (match offset with Some off -> off < 0 | None -> false) then
        Model.Err Errno.EINVAL
      else if count = 0 then Model.Ret 0
      else begin
        let pos =
          match offset with
          | Some off -> off
          | None -> if opened.append then file.size else opened.offset
        in
        file.size <- max file.size (pos + count);
        if offset = None then opened.offset <- pos + count;
        Model.Ret count
      end

  let read t fd count offset =
    match file_of_fd t fd with
    | None -> Model.Err Errno.EBADF
    | Some (opened, file) ->
      if not opened.readable then Model.Err Errno.EBADF
      else if (match offset with Some off -> off < 0 | None -> false) then
        Model.Err Errno.EINVAL
      else begin
        let pos = match offset with Some off -> off | None -> opened.offset in
        let n = min count (max 0 (file.size - pos)) in
        if offset = None then opened.offset <- opened.offset + n;
        Model.Ret n
      end

  let lseek t fd offset whence =
    match file_of_fd t fd with
    | None -> Model.Err Errno.EBADF
    | Some (opened, file) ->
      let target =
        match whence with
        | Whence.SEEK_SET -> Some offset
        | Whence.SEEK_CUR -> Some (opened.offset + offset)
        | Whence.SEEK_END -> Some (file.size + offset)
        | Whence.SEEK_DATA | Whence.SEEK_HOLE -> None (* outside the spec *)
      in
      (match target with
       | None -> assert false
       | Some pos when pos < 0 -> Model.Err Errno.EINVAL
       | Some pos ->
         opened.offset <- pos;
         Model.Ret pos)

  let truncate t path length =
    match Hashtbl.find_opt t.files path with
    | None -> Model.Err Errno.ENOENT
    | Some _ when length < 0 -> Model.Err Errno.EINVAL
    | Some file ->
      file.size <- length;
      Model.Ret 0

  let close t fd =
    if Hashtbl.mem t.fds fd then begin
      Hashtbl.remove t.fds fd;
      Model.Ret 0
    end
    else Model.Err Errno.EBADF

end

(* --- operation generator, restricted to the spec's domain --- *)

type op =
  | Op_open of int * int  (* path index, flag-set index *)
  | Op_write of int * int * int option
  | Op_read of int * int * int option
  | Op_lseek of int * int * Whence.t
  | Op_truncate of int * int
  | Op_close of int

let path_names = [| "/a"; "/b"; "/c" |]

let flag_sets =
  [| Open_flags.of_flags Open_flags.[ O_RDWR; O_CREAT ];
     Open_flags.of_flags Open_flags.[ O_WRONLY; O_CREAT; O_TRUNC ];
     Open_flags.of_flags Open_flags.[ O_RDONLY ];
     Open_flags.of_flags Open_flags.[ O_WRONLY; O_APPEND ];
     Open_flags.of_flags Open_flags.[ O_RDWR; O_CREAT; O_EXCL ] |]

let op_gen =
  QCheck.Gen.(
    let path = int_range 0 (Array.length path_names - 1) in
    let fd = int_range 3 9 in
    let size = oneof [ return 0; int_range 1 100_000 ] in
    let offset = oneof [ return None; map (fun o -> Some o) (int_range (-2) 100_000) ] in
    oneof
      [ map2 (fun p f -> Op_open (p, f)) path (int_range 0 (Array.length flag_sets - 1));
        map3 (fun f s o -> Op_write (f, s, o)) fd size offset;
        map3 (fun f s o -> Op_read (f, s, o)) fd size offset;
        map3 (fun f o w -> Op_lseek (f, o, w)) fd (int_range (-1000) 200_000)
          (oneofl Whence.[ SEEK_SET; SEEK_CUR; SEEK_END ]);
        map2 (fun p l -> Op_truncate (p, l)) path (int_range (-1) 200_000);
        map (fun f -> Op_close f) fd ])

let call_of_op op : Model.call =
  match op with
  | Op_open (p, f) -> Model.open_ ~mode:0o644 ~flags:flag_sets.(f) path_names.(p)
  | Op_write (fd, count, offset) ->
    (match offset with
     | Some off -> Model.write ~variant:Model.Sys_pwrite64 ~offset:off ~fd ~count ()
     | None -> Model.write ~fd ~count ())
  | Op_read (fd, count, offset) ->
    (match offset with
     | Some off -> Model.read ~variant:Model.Sys_pread64 ~offset:off ~fd ~count ()
     | None -> Model.read ~fd ~count ())
  | Op_lseek (fd, offset, whence) -> Model.lseek ~fd ~offset ~whence
  | Op_truncate (p, length) ->
    Model.truncate ~target:(Model.Path path_names.(p)) ~length ()
  | Op_close fd -> Model.close fd

let spec_outcome spec op =
  match op with
  | Op_open (p, f) -> Spec.open_ spec path_names.(p) flag_sets.(f)
  | Op_write (fd, count, offset) -> Spec.write spec fd count offset
  | Op_read (fd, count, offset) -> Spec.read spec fd count offset
  | Op_lseek (fd, offset, whence) -> Spec.lseek spec fd offset whence
  | Op_truncate (p, length) -> Spec.truncate spec path_names.(p) length
  | Op_close fd -> Spec.close spec fd

let model_agreement_prop =
  QCheck.Test.make ~name:"Fs agrees with the reference spec on random programs"
    ~count:400
    (QCheck.make QCheck.Gen.(list_size (int_range 0 60) op_gen))
    (fun ops ->
      let fs = Fs.create () in
      let spec = Spec.create () in
      List.for_all
        (fun op ->
          let real = Fs.exec fs (call_of_op op) in
          let predicted = spec_outcome spec op in
          let same =
            Model.outcome_to_string real = Model.outcome_to_string predicted
          in
          if not same then
            QCheck.Test.fail_reportf "op %s: fs answered %s, spec predicted %s"
              (Model.call_to_string (call_of_op op))
              (Model.outcome_to_string real)
              (Model.outcome_to_string predicted)
          else same)
        ops)

let suites =
  [ ("vfs.model_based", [ QCheck_alcotest.to_alcotest ~long:true model_agreement_prop ]) ]
