(* Crash-consistency model tests: the durability semantics of sync,
   fsync, and power-cut recovery, including the injectable
   crash-consistency fault. *)

open Iocov_syscall
open Iocov_vfs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ret_fd = function
  | Model.Ret fd -> fd
  | Model.Err e -> Alcotest.failf "expected fd, got %s" (Errno.to_string e)

let creat_rw = Open_flags.of_flags Open_flags.[ O_RDWR; O_CREAT ]
let rdonly_dir = Open_flags.of_flags Open_flags.[ O_RDONLY; O_DIRECTORY ]

let setup ?config () =
  let fs = Fs.create ?config () in
  ignore (Fs.exec fs (Model.mkdir ~mode:0o755 "/d"));
  (match Fs.exec_aux fs Fs.Sync with Ok _ -> () | Error _ -> Alcotest.fail "sync");
  fs

let write_file fs path size =
  let fd = ret_fd (Fs.exec fs (Model.open_ ~mode:0o644 ~flags:creat_rw path)) in
  (match Fs.exec fs (Model.write ~fd ~count:size ()) with
   | Model.Ret n when n = size -> ()
   | _ -> Alcotest.fail "write");
  fd

let fsync_dir fs dir =
  let dfd = ret_fd (Fs.exec fs (Model.open_ ~flags:rdonly_dir dir)) in
  ignore (Fs.exec_aux fs (Fs.Fsync dfd));
  ignore (Fs.exec fs (Model.close dfd))

let test_unsynced_lost () =
  let fs = setup () in
  let fd = write_file fs "/d/v" 4096 in
  ignore (Fs.exec fs (Model.close fd));
  ignore (Fs.exec_aux fs Fs.Crash);
  check_bool "volatile file lost" false (Fs.exists fs "/d/v")

let test_sync_persists_everything () =
  let fs = setup () in
  let fd = write_file fs "/d/s" 4096 in
  ignore (Fs.exec fs (Model.close fd));
  let sum = Result.get_ok (Fs.checksum fs "/d/s") in
  ignore (Fs.exec_aux fs Fs.Sync);
  ignore (Fs.exec_aux fs Fs.Crash);
  check_bool "file survives" true (Fs.exists fs "/d/s");
  check_int "content identical" sum (Result.get_ok (Fs.checksum fs "/d/s"))

let test_fsync_without_dir_loses_name () =
  let fs = setup () in
  let fd = write_file fs "/d/f" 4096 in
  ignore (Fs.exec_aux fs (Fs.Fsync fd));
  ignore (Fs.exec fs (Model.close fd));
  ignore (Fs.exec_aux fs Fs.Crash);
  (* the inode was durable but no durable directory entry names it *)
  check_bool "name lost" false (Fs.exists fs "/d/f")

let test_fsync_with_dir_keeps_file () =
  let fs = setup () in
  let fd = write_file fs "/d/g" 4096 in
  ignore (Fs.exec_aux fs (Fs.Fsync fd));
  ignore (Fs.exec fs (Model.close fd));
  let sum = Result.get_ok (Fs.checksum fs "/d/g") in
  fsync_dir fs "/d";
  ignore (Fs.exec_aux fs Fs.Crash);
  check_bool "file survives" true (Fs.exists fs "/d/g");
  check_int "content identical" sum (Result.get_ok (Fs.checksum fs "/d/g"))

let test_dir_entry_without_inode_recovers_empty () =
  let fs = setup () in
  let fd = write_file fs "/d/h" 4096 in
  ignore (Fs.exec fs (Model.close fd));
  (* persist only the NAME (dir fsync), never the file's data *)
  fsync_dir fs "/d";
  ignore (Fs.exec_aux fs Fs.Crash);
  check_bool "name survives" true (Fs.exists fs "/d/h");
  check_int "data lost: recovered empty" 0 (Result.get_ok (Fs.stat fs "/d/h")).Fs.st_size

let test_overwrite_after_sync_rolls_back () =
  let fs = setup () in
  let fd = write_file fs "/d/o" 1000 in
  ignore (Fs.exec fs (Model.close fd));
  ignore (Fs.exec_aux fs Fs.Sync);
  let durable_sum = Result.get_ok (Fs.checksum fs "/d/o") in
  (* volatile overwrite *)
  let fd = ret_fd (Fs.exec fs (Model.open_ ~flags:(Open_flags.of_flags Open_flags.[ O_RDWR ]) "/d/o")) in
  (match Fs.exec fs (Model.write ~fd ~count:1000 ()) with Model.Ret _ -> () | _ -> Alcotest.fail "w");
  ignore (Fs.exec fs (Model.close fd));
  ignore (Fs.exec_aux fs Fs.Crash);
  check_int "rolled back" durable_sum (Result.get_ok (Fs.checksum fs "/d/o"))

let test_crash_clears_fd_table () =
  let fs = setup () in
  let fd = write_file fs "/d/x" 10 in
  ignore (Fs.exec_aux fs Fs.Crash);
  check_bool "fd dead after crash" true
    (match Fs.exec fs (Model.read ~fd ~count:1 ()) with
     | Model.Err Errno.EBADF -> true
     | _ -> false);
  check_int "no open fds" 0 (Fs.open_fd_count fs)

let test_crash_accounting_consistent () =
  let fs = setup () in
  for i = 1 to 5 do
    let fd = write_file fs (Printf.sprintf "/d/f%d" i) (i * 10_000) in
    ignore (Fs.exec fs (Model.close fd))
  done;
  ignore (Fs.exec_aux fs Fs.Sync);
  let used_before = Fs.used_blocks fs in
  for i = 6 to 9 do
    let fd = write_file fs (Printf.sprintf "/d/g%d" i) 50_000 in
    ignore (Fs.exec fs (Model.close fd))
  done;
  ignore (Fs.exec_aux fs Fs.Crash);
  check_int "accounting restored" used_before (Fs.used_blocks fs)

let test_double_crash_idempotent () =
  let fs = setup () in
  let fd = write_file fs "/d/k" 100 in
  ignore (Fs.exec fs (Model.close fd));
  ignore (Fs.exec_aux fs Fs.Sync);
  ignore (Fs.exec_aux fs Fs.Crash);
  let sum1 = Result.get_ok (Fs.checksum fs "/d/k") in
  ignore (Fs.exec_aux fs Fs.Crash);
  check_int "second crash no-op" sum1 (Result.get_ok (Fs.checksum fs "/d/k"))

let test_fsync_skips_data_fault () =
  let config = Config.with_faults [ Fault.Fsync_skips_data ] Config.default in
  let fs = setup ~config () in
  let fd = write_file fs "/d/buggy" 8192 in
  let sum_before = Result.get_ok (Fs.checksum fs "/d/buggy") in
  ignore (Fs.exec_aux fs (Fs.Fsync fd));
  ignore (Fs.exec fs (Model.close fd));
  fsync_dir fs "/d";
  ignore (Fs.exec_aux fs Fs.Crash);
  check_bool "file present (metadata persisted)" true (Fs.exists fs "/d/buggy");
  check_int "size persisted" 8192 (Result.get_ok (Fs.stat fs "/d/buggy")).Fs.st_size;
  check_bool "content lost (the bug)" true
    (Result.get_ok (Fs.checksum fs "/d/buggy") <> sum_before)

let test_mutations_after_crash_work () =
  let fs = setup () in
  ignore (Fs.exec_aux fs Fs.Crash);
  let fd = write_file fs "/d/new" 123 in
  ignore (Fs.exec fs (Model.close fd));
  check_bool "fs usable after crash" true (Fs.exists fs "/d/new")

(* Property: after sync-then-crash, every surviving regular file's
   checksum equals its pre-crash value, for random workloads. *)
let crash_durability_prop =
  QCheck.Test.make ~name:"sync+crash preserves all synced content" ~count:60
    QCheck.(small_list (pair (int_range 1 6) (int_range 0 20_000)))
    (fun files ->
      let fs = setup () in
      List.iteri
        (fun i (slot, size) ->
          let path = Printf.sprintf "/d/p%d_%d" slot i in
          let fd =
            match Fs.exec fs (Model.open_ ~mode:0o644 ~flags:creat_rw path) with
            | Model.Ret fd -> fd
            | Model.Err _ -> -1
          in
          if fd >= 0 then begin
            ignore (Fs.exec fs (Model.write ~fd ~count:size ()));
            ignore (Fs.exec fs (Model.close fd))
          end)
        files;
      ignore (Fs.exec_aux fs Fs.Sync);
      let snapshot =
        List.filter_map
          (fun name ->
            let path = "/d/" ^ name in
            match Fs.checksum fs path with
            | Ok sum -> Some (path, sum)
            | Error _ -> None)
          (Result.get_ok (Fs.list_dir fs "/d"))
      in
      ignore (Fs.exec_aux fs Fs.Crash);
      List.for_all
        (fun (path, sum) ->
          match Fs.checksum fs path with Ok sum' -> sum = sum' | Error _ -> false)
        snapshot)

let suites =
  [ ( "vfs.crash",
      [ Alcotest.test_case "unsynced state lost" `Quick test_unsynced_lost;
        Alcotest.test_case "sync persists everything" `Quick test_sync_persists_everything;
        Alcotest.test_case "fsync alone loses the name" `Quick test_fsync_without_dir_loses_name;
        Alcotest.test_case "fsync + dir fsync keeps the file" `Quick
          test_fsync_with_dir_keeps_file;
        Alcotest.test_case "durable name, volatile data" `Quick
          test_dir_entry_without_inode_recovers_empty;
        Alcotest.test_case "volatile overwrite rolls back" `Quick
          test_overwrite_after_sync_rolls_back;
        Alcotest.test_case "crash clears fds" `Quick test_crash_clears_fd_table;
        Alcotest.test_case "accounting restored" `Quick test_crash_accounting_consistent;
        Alcotest.test_case "double crash idempotent" `Quick test_double_crash_idempotent;
        Alcotest.test_case "Fsync_skips_data fault" `Quick test_fsync_skips_data_fault;
        Alcotest.test_case "fs usable after crash" `Quick test_mutations_after_crash_work;
        QCheck_alcotest.to_alcotest crash_durability_prop ] ) ]
