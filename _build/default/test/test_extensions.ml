(* Tests for the future-work extensions: coverage snapshots, the
   Syzkaller program adapter, and the feedback-comparison fuzzer. *)

open Iocov_syscall
module Coverage = Iocov_core.Coverage
module Snapshot = Iocov_core.Snapshot
module Partition = Iocov_core.Partition
module Arg_class = Iocov_core.Arg_class
module Syzlang = Iocov_trace.Syzlang
module Fuzzer = Iocov_suites.Fuzzer
module Runner = Iocov_suites.Runner

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Snapshot --- *)

let sample_coverage () =
  let cov = Coverage.create () in
  Coverage.observe cov
    (Model.open_ ~mode:0o644 ~flags:(Open_flags.of_flags Open_flags.[ O_WRONLY; O_CREAT ]) "/a")
    (Model.Ret 3);
  Coverage.observe cov (Model.write ~fd:3 ~count:4096 ()) (Model.Ret 4096);
  Coverage.observe cov (Model.write ~fd:3 ~count:0 ()) (Model.Ret 0);
  Coverage.observe cov (Model.lseek ~fd:3 ~offset:(-1) ~whence:Whence.SEEK_CUR)
    (Model.Err Errno.EINVAL);
  Coverage.observe cov (Model.open_ ~flags:0 "/missing") (Model.Err Errno.ENOENT);
  Coverage.observe cov
    (Model.setxattr ~target:(Model.Path "/a") ~name:"user.k" ~size:65536 ())
    (Model.Err Errno.ENOSPC);
  cov

let test_snapshot_string_roundtrip () =
  let cov = sample_coverage () in
  match Snapshot.of_string (Snapshot.to_string cov) with
  | Ok cov' -> check_bool "roundtrip equal" true (Snapshot.equal cov cov')
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_snapshot_file_roundtrip () =
  let cov = sample_coverage () in
  let path = Filename.temp_file "iocov_snap" ".cov" in
  Snapshot.save_file path cov;
  let result = Snapshot.load_file path in
  Sys.remove path;
  match result with
  | Ok cov' -> check_bool "file roundtrip" true (Snapshot.equal cov cov')
  | Error msg -> Alcotest.failf "load failed: %s" msg

let test_snapshot_suite_roundtrip () =
  (* a real suite's coverage — thousands of counters — survives *)
  let r = Runner.run ~seed:3 ~scale:0.02 Runner.Crashmonkey in
  match Snapshot.of_string (Snapshot.to_string r.Runner.coverage) with
  | Ok cov' -> check_bool "suite coverage roundtrip" true (Snapshot.equal r.Runner.coverage cov')
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_snapshot_rejects_garbage () =
  List.iter
    (fun s ->
      match Snapshot.of_string s with
      | Ok _ -> Alcotest.failf "expected failure for %S" s
      | Error _ -> ())
    [ ""; "not a snapshot"; "iocov-coverage v1\nbogus line here";
      "iocov-coverage v1\ninput open.flags O_NOPE 3";
      "iocov-coverage v1\ninput nope.arg O_RDONLY 3";
      "iocov-coverage v1\noutput open NOTANERRNO 3";
      "iocov-coverage v1\ncalls -4" ]

let test_snapshot_empty_coverage () =
  match Snapshot.of_string (Snapshot.to_string (Coverage.create ())) with
  | Ok cov' -> check_int "empty stays empty" 0 (Coverage.calls_observed cov')
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_snapshot_merge_after_load () =
  let a = sample_coverage () in
  let b = Result.get_ok (Snapshot.of_string (Snapshot.to_string a)) in
  Coverage.merge_into ~dst:b a;
  check_int "merged doubles calls" (2 * Coverage.calls_observed a) (Coverage.calls_observed b)

let test_partition_label_roundtrip () =
  (* every partition in every domain round-trips through its label *)
  List.iter
    (fun arg ->
      List.iter
        (fun part ->
          match Partition.of_label (Partition.label part) with
          | Some part' ->
            check_bool (Partition.label part ^ " roundtrip") true (Partition.equal part part')
          | None -> Alcotest.failf "no parse for %s" (Partition.label part))
        (Partition.domain arg))
    Arg_class.all

let test_output_token_roundtrip () =
  List.iter
    (fun base ->
      List.iter
        (fun out ->
          match Partition.output_of_token (Partition.output_token out) with
          | Some out' ->
            check_bool
              (Partition.output_token out ^ " roundtrip")
              true
              (Partition.equal_output out out')
          | None -> Alcotest.failf "no parse for %s" (Partition.output_token out))
        (Partition.output_domain base))
    Model.all_bases

(* --- Syzlang --- *)

let sample_program =
  {|# a fuzzed program
r0 = openat(0xffffffffffffff9c, &(0x7f0000000000)='./file0\x00', 0x42, 0x1ff)
pwrite64(r0, &(0x7f0000000040)="deadbeef", 0x4, 0x0)
r1 = socket(0x2, 0x1, 0x0)
sendto(r1, &(0x7f0000000080)="00", 0x1, 0x0, nil, 0x0)
lseek(r0, 0x10, 0x1)
readv(r0, &(0x7f0000000100)=[{&(0x7f0000000200)=""/100, 0x64}, {&(0x7f0000000300)=""/10, 0xa}], 0x2)
mkdir(&(0x7f0000000400)='./dir0\x00', 0x1c0)
truncate(&(0x7f0000000500)='./file0\x00', 0x10000)
setxattr(&(0x7f0000000000)='./file0\x00', &(0x7f0000000600)='user.x\x00', &(0x7f0000000640)="aa", 0x1, 0x1)
fgetxattr(r0, &(0x7f0000000600)='user.x\x00', &(0x7f0000000680)=""/64, 0x40)
close(r0)|}

let parsed = lazy (Result.get_ok (Syzlang.parse_program sample_program))

let test_syz_counts () =
  let p = Lazy.force parsed in
  check_int "supported calls" 9 (List.length p.Syzlang.calls);
  check_int "skipped foreign syscalls" 2 (List.length p.Syzlang.skipped)

let test_syz_open_decoding () =
  match (Lazy.force parsed).Syzlang.calls with
  | Model.Open_call { variant; path; flags; mode } :: _ ->
    check_bool "variant" true (variant = Model.Sys_openat);
    Alcotest.(check string) "path" "./file0" path;
    (* 0x42 = O_RDWR | O_CREAT *)
    check_bool "O_RDWR" true (Open_flags.has flags Open_flags.O_RDWR);
    check_bool "O_CREAT" true (Open_flags.has flags Open_flags.O_CREAT);
    check_int "mode 0x1ff = 0o777" 0o777 mode
  | _ -> Alcotest.fail "first call is not the openat"

let test_syz_fd_binding () =
  (* the fd bound to r0 flows to later calls; r1 (socket) gets its own *)
  let p = Lazy.force parsed in
  let fds =
    List.filter_map
      (function
        | Model.Write_call { fd; _ } | Model.Read_call { fd; _ } | Model.Lseek_call { fd; _ }
        | Model.Close_call { fd } -> Some fd
        | Model.Getxattr_call { target = Model.Fd fd; _ } -> Some fd
        | _ -> None)
      p.Syzlang.calls
  in
  check_bool "all r0 uses share one descriptor" true
    (List.length (List.sort_uniq compare fds) = 1)

let test_syz_pwrite_fields () =
  let p = Lazy.force parsed in
  match List.nth p.Syzlang.calls 1 with
  | Model.Write_call { variant; count; offset; _ } ->
    check_bool "pwrite64" true (variant = Model.Sys_pwrite64);
    check_int "count from blob" 4 count;
    check_bool "offset" true (offset = Some 0)
  | _ -> Alcotest.fail "expected the pwrite64"

let test_syz_iovec_sum () =
  let p = Lazy.force parsed in
  match List.find_opt (function Model.Read_call { variant = Model.Sys_readv; _ } -> true | _ -> false) p.Syzlang.calls with
  | Some (Model.Read_call { count; _ }) -> check_int "0x64 + 0xa" 110 count
  | _ -> Alcotest.fail "expected the readv"

let test_syz_whence_and_xattr () =
  let p = Lazy.force parsed in
  (match List.find_opt (function Model.Lseek_call _ -> true | _ -> false) p.Syzlang.calls with
   | Some (Model.Lseek_call { whence; offset; _ }) ->
     check_bool "whence 1 = SEEK_CUR" true (whence = Whence.SEEK_CUR);
     check_int "offset" 16 offset
   | _ -> Alcotest.fail "expected the lseek");
  match List.find_opt (function Model.Setxattr_call _ -> true | _ -> false) p.Syzlang.calls with
  | Some (Model.Setxattr_call { name; size; flags; _ }) ->
    Alcotest.(check string) "attr name" "user.x" name;
    check_int "size" 1 size;
    check_bool "XATTR_CREATE" true (flags = Xattr_flag.XATTR_CREATE)
  | _ -> Alcotest.fail "expected the setxattr"

let test_syz_at_fdcwd_wraps () =
  (* 0xffffffffffffff9c must not break integer parsing *)
  match Syzlang.parse_program "r0 = openat(0xffffffffffffff9c, &(0x7f0000000000)='./x\\x00', 0x0, 0x0)" with
  | Ok p -> check_int "one call" 1 (List.length p.Syzlang.calls)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_syz_errors_are_located () =
  match Syzlang.parse_program "openat(0x0, &(0x7f0000000000)='./x\\x00', 0x0)" with
  | Ok _ -> Alcotest.fail "expected arity failure"
  | Error msg -> check_bool "mentions line" true (String.length msg > 0)

let test_syz_observe_program () =
  let cov = Coverage.create () in
  match Syzlang.observe_program cov sample_program with
  | Ok n ->
    check_int "calls observed" 9 n;
    check_int "input side fed" 9 (Coverage.calls_observed cov);
    check_bool "O_CREAT partition covered" true
      (Coverage.input_count cov Arg_class.Open_flags_arg (Partition.P_flag Open_flags.O_CREAT)
       > 0);
    (* no outcomes in a program log: output side stays empty *)
    check_int "no output coverage" 0
      (List.length (Coverage.output_histogram cov Model.Open))
  | Error msg -> Alcotest.failf "observe failed: %s" msg

let test_syz_empty_and_comments () =
  match Syzlang.parse_program "# nothing\n\n# here\n" with
  | Ok p -> check_int "no calls" 0 (List.length p.Syzlang.calls)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

(* --- Fuzzer --- *)

let test_fuzzer_deterministic () =
  let a = Fuzzer.run ~seed:5 ~budget:300 ~feedback:Fuzzer.Partition_novelty () in
  let b = Fuzzer.run ~seed:5 ~budget:300 ~feedback:Fuzzer.Partition_novelty () in
  check_int "same corpus" a.Fuzzer.corpus_size b.Fuzzer.corpus_size;
  check_bool "same growth curve" true (a.Fuzzer.growth = b.Fuzzer.growth)

let test_fuzzer_growth_monotone () =
  let r = Fuzzer.run ~seed:6 ~budget:500 ~feedback:Fuzzer.Outcome_novelty () in
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check_bool "coverage never shrinks" true (monotone r.Fuzzer.growth);
  check_int "executions recorded" 500 r.Fuzzer.executions

let test_fuzzer_partition_feedback_wins () =
  (* the paper's related-work claim, measured: partition-novelty feedback
     covers at least as many partitions as outcome-novelty under the same
     budget, and strictly more on this seed *)
  let outcome, partition = Fuzzer.compare_feedbacks ~seed:77 ~budget:1500 () in
  let c r = Fuzzer.covered_partitions r.Fuzzer.coverage in
  check_bool "guided covers strictly more" true (c partition > c outcome)

let test_fuzzer_corpus_grows () =
  let r = Fuzzer.run ~seed:8 ~budget:400 ~feedback:Fuzzer.Partition_novelty () in
  check_bool "corpus beyond the seeds" true (r.Fuzzer.corpus_size > 4)

let test_fuzzer_finds_injected_fault () =
  (* with a boundary fault planted, the guided fuzzer's differential
     check reports deviations: the seed corpus's setxattr/getxattr pairs
     mutate into the zero-size value that trips the bug *)
  let r =
    Fuzzer.run ~seed:9 ~budget:800 ~faults:[ Iocov_vfs.Fault.Getxattr_empty_enodata ]
      ~feedback:Fuzzer.Partition_novelty ()
  in
  check_bool "deviations observed" true (r.Fuzzer.crashes > 0)

let test_fuzzer_no_crashes_without_faults () =
  let r = Fuzzer.run ~seed:10 ~budget:200 ~feedback:Fuzzer.Partition_novelty () in
  check_int "no faults, no crashes" 0 r.Fuzzer.crashes

(* --- Reduction --- *)

module Reduction = Iocov_core.Reduction

let cov_of calls =
  let cov = Coverage.create () in
  List.iter (fun (call, outcome) -> Coverage.observe cov call outcome) calls;
  cov

let test_reduction_drops_redundant () =
  (* two identical tests plus one unique: the greedy cover picks two *)
  let a = cov_of [ (Model.write ~fd:3 ~count:4096 (), Model.Ret 4096) ] in
  let a' = cov_of [ (Model.write ~fd:3 ~count:4096 (), Model.Ret 4096) ] in
  let b = cov_of [ (Model.write ~fd:3 ~count:0 (), Model.Ret 0) ] in
  let sel =
    Reduction.greedy
      [ { Reduction.name = "t1"; coverage = a };
        { Reduction.name = "t1-clone"; coverage = a' };
        { Reduction.name = "t2"; coverage = b } ]
  in
  check_int "two tests suffice" 2 (List.length sel.Reduction.chosen);
  check_bool "unique test kept" true (List.mem "t2" sel.Reduction.chosen);
  check_bool "one of the twins kept" true
    (List.mem "t1" sel.Reduction.chosen <> List.mem "t1-clone" sel.Reduction.chosen)

let test_reduction_preserves_coverage () =
  let mk n =
    cov_of
      [ (Model.write ~fd:3 ~count:(1 lsl n) (), Model.Ret (1 lsl n));
        (Model.read ~fd:3 ~count:(1 lsl n) (), Model.Ret (1 lsl n)) ]
  in
  let items =
    List.init 6 (fun i -> { Reduction.name = Printf.sprintf "t%d" i; coverage = mk i })
  in
  let sel = Reduction.greedy items in
  check_int "selection covers everything" sel.Reduction.total_covered sel.Reduction.covered;
  (* every test contributes a distinct bucket, so none can be dropped *)
  check_int "no test is redundant here" 6 (List.length sel.Reduction.chosen)

let test_reduction_greedy_order () =
  (* the big test is picked first *)
  let big =
    cov_of
      [ (Model.write ~fd:3 ~count:1 (), Model.Ret 1);
        (Model.write ~fd:3 ~count:16 (), Model.Ret 16);
        (Model.write ~fd:3 ~count:256 (), Model.Ret 256) ]
  in
  let small = cov_of [ (Model.write ~fd:3 ~count:1 (), Model.Ret 1) ] in
  let sel =
    Reduction.greedy
      [ { Reduction.name = "small"; coverage = small };
        { Reduction.name = "big"; coverage = big } ]
  in
  (match sel.Reduction.chosen with
   | "big" :: _ -> ()
   | other -> Alcotest.failf "expected big first, got %s" (String.concat "," other));
  check_int "small is subsumed" 1 (List.length sel.Reduction.chosen)

let test_reduction_empty () =
  let sel = Reduction.greedy [] in
  check_int "nothing chosen" 0 (List.length sel.Reduction.chosen);
  check_int "nothing covered" 0 sel.Reduction.total_covered

let test_reduction_deterministic () =
  let items =
    List.init 5 (fun i ->
        { Reduction.name = Printf.sprintf "t%d" i;
          coverage = cov_of [ (Model.write ~fd:3 ~count:(i * 100) (), Model.Ret (i * 100)) ] })
  in
  let a = Reduction.greedy items and b = Reduction.greedy items in
  check_bool "same picks" true (a.Reduction.chosen = b.Reduction.chosen)

let suites =
  [ ( "ext.snapshot",
      [ Alcotest.test_case "string roundtrip" `Quick test_snapshot_string_roundtrip;
        Alcotest.test_case "file roundtrip" `Quick test_snapshot_file_roundtrip;
        Alcotest.test_case "suite coverage roundtrip" `Slow test_snapshot_suite_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_snapshot_rejects_garbage;
        Alcotest.test_case "empty coverage" `Quick test_snapshot_empty_coverage;
        Alcotest.test_case "merge after load" `Quick test_snapshot_merge_after_load;
        Alcotest.test_case "partition label roundtrip" `Quick test_partition_label_roundtrip;
        Alcotest.test_case "output token roundtrip" `Quick test_output_token_roundtrip ] );
    ( "ext.syzlang",
      [ Alcotest.test_case "call and skip counts" `Quick test_syz_counts;
        Alcotest.test_case "openat decoding" `Quick test_syz_open_decoding;
        Alcotest.test_case "register binding" `Quick test_syz_fd_binding;
        Alcotest.test_case "pwrite fields" `Quick test_syz_pwrite_fields;
        Alcotest.test_case "iovec length sum" `Quick test_syz_iovec_sum;
        Alcotest.test_case "whence and xattr decoding" `Quick test_syz_whence_and_xattr;
        Alcotest.test_case "AT_FDCWD wraps" `Quick test_syz_at_fdcwd_wraps;
        Alcotest.test_case "errors located" `Quick test_syz_errors_are_located;
        Alcotest.test_case "observe_program" `Quick test_syz_observe_program;
        Alcotest.test_case "comments and blanks" `Quick test_syz_empty_and_comments ] );
    ( "ext.fuzzer",
      [ Alcotest.test_case "deterministic" `Quick test_fuzzer_deterministic;
        Alcotest.test_case "growth monotone" `Quick test_fuzzer_growth_monotone;
        Alcotest.test_case "partition feedback wins" `Slow test_fuzzer_partition_feedback_wins;
        Alcotest.test_case "corpus grows" `Quick test_fuzzer_corpus_grows;
        Alcotest.test_case "finds an injected fault" `Slow test_fuzzer_finds_injected_fault;
        Alcotest.test_case "no false crashes" `Quick test_fuzzer_no_crashes_without_faults ] );
    ( "ext.reduction",
      [ Alcotest.test_case "drops redundant tests" `Quick test_reduction_drops_redundant;
        Alcotest.test_case "preserves coverage" `Quick test_reduction_preserves_coverage;
        Alcotest.test_case "greedy order" `Quick test_reduction_greedy_order;
        Alcotest.test_case "empty input" `Quick test_reduction_empty;
        Alcotest.test_case "deterministic" `Quick test_reduction_deterministic ] ) ]
