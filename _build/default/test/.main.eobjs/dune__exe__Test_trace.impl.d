test/test_trace.ml: Alcotest Errno Filename In_channel Iocov_syscall Iocov_trace Iocov_vfs List Model Open_flags QCheck QCheck_alcotest Result String Sys Unix Whence
