test/test_extensions.ml: Alcotest Errno Filename Iocov_core Iocov_suites Iocov_syscall Iocov_trace Iocov_vfs Lazy List Model Open_flags Printf Result String Sys Whence Xattr_flag
