test/test_vfs.ml: Alcotest Bytes Char Config Errno Fs Iocov_syscall Iocov_vfs List Model Node Open_flags Path Printf QCheck QCheck_alcotest Result String Whence Xattr_flag
