test/test_model_based.ml: Array Errno Hashtbl Iocov_syscall Iocov_vfs List Model Open_flags QCheck QCheck_alcotest Whence
