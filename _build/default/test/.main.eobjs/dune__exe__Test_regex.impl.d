test/test_regex.ml: Alcotest Buffer Iocov_regex List Printf QCheck QCheck_alcotest String
