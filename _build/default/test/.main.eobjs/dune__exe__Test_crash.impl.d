test/test_crash.ml: Alcotest Config Errno Fault Fs Iocov_syscall Iocov_vfs List Model Open_flags Printf QCheck QCheck_alcotest Result
