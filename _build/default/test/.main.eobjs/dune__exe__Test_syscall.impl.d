test/test_syscall.ml: Alcotest Errno Iocov_syscall List Mode Model Open_flags QCheck QCheck_alcotest String Whence Xattr_flag
