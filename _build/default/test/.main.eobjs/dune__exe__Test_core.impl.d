test/test_core.ml: Alcotest Errno Iocov_core Iocov_syscall Iocov_util List Model Open_flags Printf QCheck QCheck_alcotest String Whence
