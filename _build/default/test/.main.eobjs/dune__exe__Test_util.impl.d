test/test_util.ml: Alcotest Array Ascii Histogram Iocov_util List Log2 Printf Prng QCheck QCheck_alcotest Stats Stdlib String
