test/test_bugstudy.ml: Alcotest Float Iocov_bugstudy Iocov_syscall Iocov_vfs Lazy List String
