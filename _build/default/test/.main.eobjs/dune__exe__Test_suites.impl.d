test/test_suites.ml: Alcotest Errno Iocov_core Iocov_suites Iocov_syscall Iocov_util Iocov_vfs Lazy List Model Open_flags Printf
