test/test_integration.ml: Alcotest Array Filename Iocov_core Iocov_suites Iocov_syscall Iocov_trace List Model Result Sys
