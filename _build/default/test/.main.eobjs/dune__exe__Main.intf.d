test/main.mli:
