(* Tests for the bug-study dataset (every Section 2 aggregate must match
   the paper exactly) and the differential tester. *)

module Bug = Iocov_bugstudy.Bug
module Dataset = Iocov_bugstudy.Dataset
module Stats = Iocov_bugstudy.Stats
module Diff = Iocov_bugstudy.Differential
module Fault = Iocov_vfs.Fault

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let stats = lazy (Stats.of_dataset ())

(* --- the paper's numbers, one test each --- *)

let test_total_70 () = check_int "70 bugs" 70 (Lazy.force stats).Stats.total
let test_ext4_51 () = check_int "51 Ext4" 51 (Lazy.force stats).Stats.ext4
let test_btrfs_19 () = check_int "19 BtrFS" 19 (Lazy.force stats).Stats.btrfs

let test_line_covered_missed_37 () =
  check_int "37/70 line-covered but missed (53%)" 37
    (Lazy.force stats).Stats.line_covered_missed

let test_func_covered_missed_43 () =
  check_int "43/70 func-covered but missed (61%)" 43
    (Lazy.force stats).Stats.func_covered_missed

let test_branch_covered_missed_20 () =
  check_int "20/70 branch-covered but missed (29%)" 20
    (Lazy.force stats).Stats.branch_covered_missed

let test_input_bugs_50 () =
  check_int "50/70 input bugs (71%)" 50 (Lazy.force stats).Stats.input_bugs

let test_output_bugs_41 () =
  check_int "41/70 output bugs (59%)" 41 (Lazy.force stats).Stats.output_bugs

let test_either_57 () =
  check_int "57/70 input- or output-related (81%)" 57
    (Lazy.force stats).Stats.input_or_output

let test_covered_missed_input_24 () =
  check_int "24/37 covered-missed input-triggerable (65%)" 24
    (Lazy.force stats).Stats.covered_missed_input_triggerable

let test_percentages () =
  let s = Lazy.force stats in
  let pct p w = int_of_float (Float.round (Stats.pct p w)) in
  check_int "53%" 53 (pct s.Stats.line_covered_missed s.Stats.total);
  check_int "61%" 61 (pct s.Stats.func_covered_missed s.Stats.total);
  check_int "29%" 29 (pct s.Stats.branch_covered_missed s.Stats.total);
  check_int "71%" 71 (pct s.Stats.input_bugs s.Stats.total);
  check_int "59%" 59 (pct s.Stats.output_bugs s.Stats.total);
  check_int "81%" 81 (pct s.Stats.input_or_output s.Stats.total);
  check_int "65%" 65 (pct s.Stats.covered_missed_input_triggerable s.Stats.line_covered_missed)

(* --- structural sanity --- *)

let test_records_valid () =
  List.iter
    (fun b ->
      check_bool (b.Bug.id ^ " coverage nesting and detectability") true (Bug.valid b))
    Dataset.all

let test_ids_unique () =
  let ids = List.map (fun b -> b.Bug.id) Dataset.all in
  check_int "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids))

let test_titles_nonempty_and_prefixed () =
  List.iter
    (fun b ->
      let prefix = match b.Bug.fs with Bug.Ext4 -> "ext4:" | Bug.Btrfs -> "btrfs:" in
      check_bool (b.Bug.id ^ " title prefixed") true
        (String.length b.Bug.title > String.length prefix
         && String.sub b.Bug.title 0 (String.length prefix) = prefix))
    Dataset.all

let test_by_fs_partition () =
  check_int "by_fs covers all" 70
    (List.length (Dataset.by_fs Bug.Ext4) + List.length (Dataset.by_fs Bug.Btrfs))

let test_find () =
  (match Dataset.find "ext4-2022-010" with
   | Some b -> check_bool "Fig 1 record found" true (b.Bug.fault = Some Fault.Xattr_ibody_overflow)
   | None -> Alcotest.fail "missing the Figure 1 record");
  check_bool "unknown id" true (Dataset.find "nope" = None)

let test_injectable_faults_unique () =
  let faults = List.filter_map (fun b -> b.Bug.fault) Dataset.injectable in
  check_int "each fault maps to one record" (List.length faults)
    (List.length (List.sort_uniq Fault.compare faults));
  check_int "12 injectable archetypes" (List.length Fault.all) (List.length faults)

let test_classification_labels () =
  let count label =
    List.length (List.filter (fun b -> Bug.classification b = label) Dataset.all)
  in
  check_int "both" 34 (count "both");
  check_int "input-only" 16 (count "input");
  check_int "output-only" 7 (count "output");
  check_int "neither" 13 (count "neither")

let test_trigger_frequency () =
  let freqs = Stats.trigger_frequency Dataset.all in
  check_int "all 11 bases listed" 11 (List.length freqs);
  let get base = List.assoc base freqs in
  check_bool "write is the top trigger" true
    (List.for_all (fun (_, n) -> n <= get Iocov_syscall.Model.Write) freqs)

let test_render_mentions_every_stat () =
  let table = Stats.render (Lazy.force stats) in
  List.iter
    (fun needle ->
      let found =
        let n = String.length needle in
        let rec go i =
          i + n <= String.length table && (String.sub table i n = needle || go (i + 1))
        in
        go 0
      in
      check_bool ("table mentions " ^ needle) true found)
    [ "37/70"; "43/70"; "20/70"; "50/70"; "41/70"; "57/70"; "24/37" ]

(* --- differential tester --- *)

let test_guided_detects_every_fault () =
  List.iter
    (fun fault ->
      let r = Diff.hunt ~strategy:Diff.Iocov_guided fault in
      check_bool (Fault.to_string fault ^ " detected by guided probes") true r.Diff.detected)
    Fault.all

let test_code_style_misses_every_fault () =
  List.iter
    (fun fault ->
      let r = Diff.hunt ~budget:16 ~strategy:Diff.Code_coverage_style fault in
      check_bool (Fault.to_string fault ^ " missed by code-style probes") false r.Diff.detected)
    Fault.all

let test_budget_respected () =
  let r = Diff.hunt ~budget:3 ~strategy:Diff.Code_coverage_style Fault.Xattr_ibody_overflow in
  check_bool "at most 3 probes" true (r.Diff.probes_run <= 3)

let test_detection_reports_probe_index () =
  let r = Diff.hunt ~strategy:Diff.Iocov_guided Fault.Write_zero_advances_offset in
  (match r.Diff.first_detection with
   | Some i -> check_bool "index within run" true (i < r.Diff.probes_run)
   | None -> Alcotest.fail "expected detection index")

let test_campaign_covers_matrix () =
  let reports = Diff.campaign ~budget:16 () in
  check_int "every fault x both strategies" (2 * List.length Fault.all) (List.length reports);
  Alcotest.(check (float 1e-9)) "guided rate 100%" 1.0
    (Diff.detection_rate reports Diff.Iocov_guided)

let test_no_false_positives () =
  (* hunting with no fault planted can never detect anything: both file
     systems are identical *)
  let probes_equal strategy =
    (* run the hunt machinery against a fault that... we simulate by
       checking a correct-vs-correct pair through the public API: every
       guided probe must behave identically on two fresh correct file
       systems, which we verify via determinism of hunt on a fault whose
       probes never reach its trigger *)
    let r = Diff.hunt ~budget:2 ~strategy Fault.Fsync_skips_data in
    (* the first two guided probes don't touch fsync; code-style probes
       never do *)
    r.Diff.detected = false
  in
  check_bool "guided prefix clean" true (probes_equal Diff.Iocov_guided);
  check_bool "code-style clean" true (probes_equal Diff.Code_coverage_style)

let test_render_campaign () =
  let reports = Diff.campaign ~budget:4 () in
  check_bool "renders" true (String.length (Diff.render reports) > 0)

let suites =
  [ ( "bugstudy.aggregates",
      [ Alcotest.test_case "70 bugs" `Quick test_total_70;
        Alcotest.test_case "51 Ext4" `Quick test_ext4_51;
        Alcotest.test_case "19 BtrFS" `Quick test_btrfs_19;
        Alcotest.test_case "37 line-covered missed" `Quick test_line_covered_missed_37;
        Alcotest.test_case "43 func-covered missed" `Quick test_func_covered_missed_43;
        Alcotest.test_case "20 branch-covered missed" `Quick test_branch_covered_missed_20;
        Alcotest.test_case "50 input bugs" `Quick test_input_bugs_50;
        Alcotest.test_case "41 output bugs" `Quick test_output_bugs_41;
        Alcotest.test_case "57 input-or-output" `Quick test_either_57;
        Alcotest.test_case "24/37 input-triggerable" `Quick test_covered_missed_input_24;
        Alcotest.test_case "rounded percentages" `Quick test_percentages ] );
    ( "bugstudy.structure",
      [ Alcotest.test_case "records valid" `Quick test_records_valid;
        Alcotest.test_case "ids unique" `Quick test_ids_unique;
        Alcotest.test_case "titles prefixed" `Quick test_titles_nonempty_and_prefixed;
        Alcotest.test_case "fs partition" `Quick test_by_fs_partition;
        Alcotest.test_case "find" `Quick test_find;
        Alcotest.test_case "injectable mapping" `Quick test_injectable_faults_unique;
        Alcotest.test_case "classification counts" `Quick test_classification_labels;
        Alcotest.test_case "trigger frequency" `Quick test_trigger_frequency;
        Alcotest.test_case "render mentions every stat" `Quick test_render_mentions_every_stat
      ] );
    ( "bugstudy.differential",
      [ Alcotest.test_case "guided detects every fault" `Slow test_guided_detects_every_fault;
        Alcotest.test_case "code-style misses every fault" `Slow
          test_code_style_misses_every_fault;
        Alcotest.test_case "budget respected" `Quick test_budget_respected;
        Alcotest.test_case "detection index" `Quick test_detection_reports_probe_index;
        Alcotest.test_case "campaign matrix" `Slow test_campaign_covers_matrix;
        Alcotest.test_case "no false positives" `Quick test_no_false_positives;
        Alcotest.test_case "render" `Quick test_render_campaign ] ) ]
