(* Unit and property tests for iocov_util: PRNG, log2 bucketing,
   histograms, statistics, and ASCII rendering. *)

open Iocov_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

(* --- Prng --- *)

let test_prng_determinism () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Prng.next_int64 a = Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:8 in
  check_bool "different seeds diverge" true (Prng.next_int64 a <> Prng.next_int64 b)

let test_prng_int_range () =
  let rng = Prng.create ~seed:1 in
  for _ = 1 to 10_000 do
    let n = Prng.int rng 17 in
    check_bool "in [0,17)" true (n >= 0 && n < 17)
  done

let test_prng_int_in_range () =
  let rng = Prng.create ~seed:2 in
  for _ = 1 to 1_000 do
    let n = Prng.int_in rng (-5) 5 in
    check_bool "in [-5,5]" true (n >= -5 && n <= 5)
  done

let test_prng_int_covers_domain () =
  let rng = Prng.create ~seed:3 in
  let seen = Array.make 8 false in
  for _ = 1 to 1_000 do
    seen.(Prng.int rng 8) <- true
  done;
  Array.iteri (fun i s -> check_bool (Printf.sprintf "value %d reached" i) true s) seen

let test_prng_float_range () =
  let rng = Prng.create ~seed:4 in
  for _ = 1 to 1_000 do
    let x = Prng.float rng 3.0 in
    check_bool "in [0,3)" true (x >= 0.0 && x < 3.0)
  done

let test_prng_chance_extremes () =
  let rng = Prng.create ~seed:5 in
  check_bool "p=0 never" false (Prng.chance rng 0.0);
  check_bool "p=1 always" true (Prng.chance rng 1.0)

let test_prng_split_independence () =
  let parent = Prng.create ~seed:6 in
  let child = Prng.split parent in
  check_bool "split streams differ" true (Prng.next_int64 parent <> Prng.next_int64 child)

let test_prng_copy () =
  let a = Prng.create ~seed:9 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  check_bool "copy replays" true (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_weighted () =
  let rng = Prng.create ~seed:10 in
  for _ = 1 to 500 do
    let x = Prng.weighted rng [ (1, "a"); (0, "never"); (3, "b") ] in
    check_bool "never has weight 0" true (x <> "never")
  done

let test_prng_weighted_bias () =
  let rng = Prng.create ~seed:11 in
  let a = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.weighted rng [ (9, `A); (1, `B) ] = `A then incr a
  done;
  check_bool "9:1 weighting is roughly respected" true (!a > 8_500 && !a < 9_500)

let test_prng_choose_list_singleton () =
  let rng = Prng.create ~seed:12 in
  check_int "singleton" 42 (Prng.choose_list rng [ 42 ])

let test_prng_shuffle_permutation () =
  let rng = Prng.create ~seed:13 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Array.iteri (fun i x -> check_int "permutation" i x) sorted

let test_prng_pow2_size_bounds () =
  let rng = Prng.create ~seed:14 in
  for _ = 1 to 2_000 do
    let n = Prng.pow2_size rng ~max_log2:12 in
    check_bool "within [1, 2^13)" true (n >= 1 && n < 8192)
  done

let prng_no_negative_prop =
  QCheck.Test.make ~name:"Prng.int is non-negative for any seed/bound"
    QCheck.(pair int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Prng.create ~seed in
      let n = Prng.int rng bound in
      n >= 0 && n < bound)

(* --- Log2 --- *)

let test_bucket_of_zero () =
  check_bool "zero bucket" true (Log2.bucket_of_int 0 = Log2.Zero)

let test_bucket_of_negative () =
  check_bool "negative bucket" true (Log2.bucket_of_int (-3) = Log2.Negative)

let test_bucket_boundaries () =
  List.iter
    (fun (n, k) ->
      check_bool
        (Printf.sprintf "%d -> 2^%d" n k)
        true
        (Log2.bucket_of_int n = Log2.Pow2 k))
    [ (1, 0); (2, 1); (3, 1); (4, 2); (1023, 9); (1024, 10); (2047, 10); (2048, 11) ]

let test_bucket_lo_hi () =
  check_int "lo of 2^10" 1024 (Log2.bucket_lo (Log2.Pow2 10));
  check_int "hi of 2^10" 2047 (Log2.bucket_hi (Log2.Pow2 10));
  check_int "lo of zero" 0 (Log2.bucket_lo Log2.Zero);
  check_int "hi of zero" 0 (Log2.bucket_hi Log2.Zero)

let test_bucket_order () =
  check_bool "neg < zero" true (Log2.compare_bucket Log2.Negative Log2.Zero < 0);
  check_bool "zero < 2^0" true (Log2.compare_bucket Log2.Zero (Log2.Pow2 0) < 0);
  check_bool "2^3 < 2^4" true (Log2.compare_bucket (Log2.Pow2 3) (Log2.Pow2 4) < 0)

let test_bucket_labels () =
  check_string "zero label" "=0" (Log2.bucket_label Log2.Zero);
  check_string "pow2 label" "2^28" (Log2.bucket_label (Log2.Pow2 28));
  check_string "size label" "256MiB" (Log2.bucket_size_label (Log2.Pow2 28))

let test_human_bytes () =
  check_string "bytes" "17B" (Log2.human_bytes 17);
  check_string "kib" "4KiB" (Log2.human_bytes 4096);
  check_string "mib" "258MiB" (Log2.human_bytes (258 * 1024 * 1024))

let test_range () =
  check_int "range length" 33 (List.length (Log2.range ~lo:0 ~hi:32))

let test_floor_log2 () =
  check_int "log2 1" 0 (Log2.floor_log2 1);
  check_int "log2 4095" 11 (Log2.floor_log2 4095);
  check_int "log2 4096" 12 (Log2.floor_log2 4096)

let bucket_contains_prop =
  QCheck.Test.make ~name:"bucket_of_int n lands in [lo, hi]"
    QCheck.(int_range 0 max_int)
    (fun n ->
      let b = Log2.bucket_of_int n in
      Log2.bucket_lo b <= n && n <= Log2.bucket_hi b)

(* --- Histogram --- *)

let int_hist () = Histogram.create ~compare:Stdlib.compare

let test_hist_empty () =
  let h = int_hist () in
  check_int "total" 0 (Histogram.total h);
  check_int "distinct" 0 (Histogram.distinct h);
  check_int "count of missing" 0 (Histogram.count h 5)

let test_hist_add_count () =
  let h = int_hist () in
  Histogram.add h 3;
  Histogram.add h ~count:4 3;
  Histogram.add h 7;
  check_int "count 3" 5 (Histogram.count h 3);
  check_int "count 7" 1 (Histogram.count h 7);
  check_int "total" 6 (Histogram.total h);
  check_int "distinct" 2 (Histogram.distinct h)

let test_hist_zero_count_is_noop () =
  let h = int_hist () in
  Histogram.add h ~count:0 3;
  check_bool "not a member" false (Histogram.mem h 3);
  check_int "distinct" 0 (Histogram.distinct h)

let test_hist_sorted () =
  let h = int_hist () in
  List.iter (Histogram.add h) [ 5; 1; 3; 1 ];
  Alcotest.(check (list (pair int int))) "sorted pairs" [ (1, 2); (3, 1); (5, 1) ]
    (Histogram.to_sorted h)

let test_hist_merge () =
  let a = int_hist () and b = int_hist () in
  Histogram.add a ~count:2 1;
  Histogram.add b ~count:3 1;
  Histogram.add b 9;
  Histogram.merge_into ~dst:a b;
  check_int "merged count" 5 (Histogram.count a 1);
  check_int "merged total" 6 (Histogram.total a);
  check_int "b untouched" 4 (Histogram.total b)

let test_hist_copy_isolated () =
  let a = int_hist () in
  Histogram.add a 1;
  let b = Histogram.copy a in
  Histogram.add b 1;
  check_int "copy diverges" 1 (Histogram.count a 1);
  check_int "copy counted" 2 (Histogram.count b 1)

let test_hist_clear () =
  let h = int_hist () in
  Histogram.add h 1;
  Histogram.clear h;
  check_int "cleared total" 0 (Histogram.total h)

let test_hist_max_frequency () =
  let h = int_hist () in
  check_int "empty max" 0 (Histogram.max_frequency h);
  Histogram.add h ~count:9 1;
  Histogram.add h ~count:4 2;
  check_int "max" 9 (Histogram.max_frequency h)

let test_hist_fold_map_sum () =
  let h = int_hist () in
  List.iter (Histogram.add h) [ 1; 2; 2 ];
  check_int "map_sum of freqs" 3 (Histogram.map_sum (fun _ n -> n) h);
  check_int "fold keys" 3 (Histogram.fold (fun k _ acc -> acc + k) h 0)

let hist_total_prop =
  QCheck.Test.make ~name:"histogram total equals sum of inserts"
    QCheck.(small_list (int_range 0 20))
    (fun keys ->
      let h = int_hist () in
      List.iter (Histogram.add h) keys;
      Histogram.total h = List.length keys)

let hist_merge_comm_prop =
  QCheck.Test.make ~name:"histogram merge is order-insensitive in totals"
    QCheck.(pair (small_list (int_range 0 10)) (small_list (int_range 0 10)))
    (fun (xs, ys) ->
      let mk keys =
        let h = int_hist () in
        List.iter (Histogram.add h) keys;
        h
      in
      let ab = mk xs in
      Histogram.merge_into ~dst:ab (mk ys);
      let ba = mk ys in
      Histogram.merge_into ~dst:ba (mk xs);
      Histogram.to_sorted ab = Histogram.to_sorted ba)

(* --- Stats --- *)

let test_mean () =
  check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  check_float "empty mean" 0.0 (Stats.mean [||])

let test_rmsd_zero_for_equal () =
  check_float "rmsd of equal arrays" 0.0 (Stats.rmsd [| 1.0; 2.0 |] [| 1.0; 2.0 |])

let test_rmsd_known () =
  check_float "rmsd" 1.0 (Stats.rmsd [| 0.0; 0.0 |] [| 1.0; -1.0 |])

let test_log10_freq () =
  check_float "log of 0 is 0" 0.0 (Stats.log10_freq 0);
  check_float "log of 1 is 0" 0.0 (Stats.log10_freq 1);
  check_float "log of 1000" 3.0 (Stats.log10_freq 1000)

let test_percentage () =
  check_float "53%" 52.857142857142854 (Stats.percentage 37 70);
  check_float "0 denominator" 0.0 (Stats.percentage 5 0)

let test_median () =
  check_float "odd median" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  check_float "even median" 1.5 (Stats.median [| 2.0; 1.0 |])

let test_geometric_mean () =
  check_float "geomean" 2.0 (Stats.geometric_mean [| 1.0; 4.0 |])

let rmsd_symmetry_prop =
  QCheck.Test.make ~name:"rmsd is symmetric"
    QCheck.(pair (array_of_size (QCheck.Gen.return 5) (float_range (-100.) 100.))
              (array_of_size (QCheck.Gen.return 5) (float_range (-100.) 100.)))
    (fun (a, b) -> abs_float (Stats.rmsd a b -. Stats.rmsd b a) < 1e-9)

(* --- Ascii --- *)

let test_si_count () =
  check_string "millions" "4,099,770" (Ascii.si_count 4099770);
  check_string "small" "17" (Ascii.si_count 17);
  check_string "thousand" "1,000" (Ascii.si_count 1000);
  check_string "negative" "-1,234" (Ascii.si_count (-1234))

let test_table_renders_all_rows () =
  let t = Ascii.table ~headers:[ "a"; "b" ] [ [ "x"; "1" ]; [ "y"; "2" ] ] in
  check_bool "contains x" true (String.length t > 0 && String.index_opt t 'x' <> None);
  check_bool "contains y" true (String.index_opt t 'y' <> None)

let test_table_pads_short_rows () =
  let t = Ascii.table ~headers:[ "a"; "b"; "c" ] [ [ "only" ] ] in
  check_bool "renders" true (String.length t > 0)

let test_log_bar_chart_untested () =
  let chart = Ascii.log_bar_chart [ ("x", 0); ("y", 100) ] in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "marks untested" true (contains chart "(untested)");
  check_bool "prints count" true (contains chart "100")

let test_grouped_chart () =
  let chart =
    Ascii.grouped_log_chart ~group_names:("A", "B") [ ("row", 10, 0) ]
  in
  check_bool "non-empty" true (String.length chart > 0)

let suites =
  [ ( "util.prng",
      [ Alcotest.test_case "determinism" `Quick test_prng_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "int range" `Quick test_prng_int_range;
        Alcotest.test_case "int_in range" `Quick test_prng_int_in_range;
        Alcotest.test_case "int covers domain" `Quick test_prng_int_covers_domain;
        Alcotest.test_case "float range" `Quick test_prng_float_range;
        Alcotest.test_case "chance extremes" `Quick test_prng_chance_extremes;
        Alcotest.test_case "split independence" `Quick test_prng_split_independence;
        Alcotest.test_case "copy replays" `Quick test_prng_copy;
        Alcotest.test_case "weighted skips zero weight" `Quick test_prng_weighted;
        Alcotest.test_case "weighted bias" `Quick test_prng_weighted_bias;
        Alcotest.test_case "choose_list singleton" `Quick test_prng_choose_list_singleton;
        Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutation;
        Alcotest.test_case "pow2_size bounds" `Quick test_prng_pow2_size_bounds;
        QCheck_alcotest.to_alcotest prng_no_negative_prop ] );
    ( "util.log2",
      [ Alcotest.test_case "bucket of zero" `Quick test_bucket_of_zero;
        Alcotest.test_case "bucket of negative" `Quick test_bucket_of_negative;
        Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
        Alcotest.test_case "bucket lo/hi" `Quick test_bucket_lo_hi;
        Alcotest.test_case "bucket order" `Quick test_bucket_order;
        Alcotest.test_case "bucket labels" `Quick test_bucket_labels;
        Alcotest.test_case "human bytes" `Quick test_human_bytes;
        Alcotest.test_case "range" `Quick test_range;
        Alcotest.test_case "floor_log2" `Quick test_floor_log2;
        QCheck_alcotest.to_alcotest bucket_contains_prop ] );
    ( "util.histogram",
      [ Alcotest.test_case "empty" `Quick test_hist_empty;
        Alcotest.test_case "add and count" `Quick test_hist_add_count;
        Alcotest.test_case "zero count is noop" `Quick test_hist_zero_count_is_noop;
        Alcotest.test_case "sorted iteration" `Quick test_hist_sorted;
        Alcotest.test_case "merge" `Quick test_hist_merge;
        Alcotest.test_case "copy isolation" `Quick test_hist_copy_isolated;
        Alcotest.test_case "clear" `Quick test_hist_clear;
        Alcotest.test_case "max frequency" `Quick test_hist_max_frequency;
        Alcotest.test_case "fold and map_sum" `Quick test_hist_fold_map_sum;
        QCheck_alcotest.to_alcotest hist_total_prop;
        QCheck_alcotest.to_alcotest hist_merge_comm_prop ] );
    ( "util.stats",
      [ Alcotest.test_case "mean" `Quick test_mean;
        Alcotest.test_case "rmsd zero for equal" `Quick test_rmsd_zero_for_equal;
        Alcotest.test_case "rmsd known value" `Quick test_rmsd_known;
        Alcotest.test_case "log10_freq boundaries" `Quick test_log10_freq;
        Alcotest.test_case "percentage" `Quick test_percentage;
        Alcotest.test_case "median" `Quick test_median;
        Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
        QCheck_alcotest.to_alcotest rmsd_symmetry_prop ] );
    ( "util.ascii",
      [ Alcotest.test_case "si_count" `Quick test_si_count;
        Alcotest.test_case "table renders rows" `Quick test_table_renders_all_rows;
        Alcotest.test_case "table pads short rows" `Quick test_table_pads_short_rows;
        Alcotest.test_case "log chart marks untested" `Quick test_log_bar_chart_untested;
        Alcotest.test_case "grouped chart" `Quick test_grouped_chart ] ) ]
