(* Tests for the syscall model: errno, flags, modes, whence, the
   27-variant table, and call serialization round-trips. *)

open Iocov_syscall

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- Errno --- *)

let test_errno_roundtrip () =
  List.iter
    (fun e ->
      match Errno.of_string (Errno.to_string e) with
      | Some e' -> check_bool "roundtrip" true (Errno.equal e e')
      | None -> Alcotest.failf "no roundtrip for %s" (Errno.to_string e))
    Errno.all

let test_errno_open_domain_size () =
  (* the open(2) manual page domain is Figure 4's 27 error codes *)
  check_int "27 open errnos" 27 (List.length Errno.open_manual_domain)

let test_errno_codes_positive_unique () =
  let codes = List.map Errno.to_code Errno.all in
  check_bool "all positive" true (List.for_all (fun c -> c > 0) codes);
  check_int "codes unique" (List.length codes) (List.length (List.sort_uniq compare codes))

let test_errno_unknown () =
  check_bool "unknown name" true (Errno.of_string "EWHATEVER" = None)

let test_errno_describe_nonempty () =
  List.iter
    (fun e -> check_bool "describe" true (String.length (Errno.describe e) > 0))
    Errno.all

(* --- Open_flags --- *)

let test_flags_domain_size () = check_int "21 flags" 21 (List.length Open_flags.all)

let test_flags_rdonly_is_zero () = check_int "O_RDONLY is 0" 0 (Open_flags.bit Open_flags.O_RDONLY)

let test_flags_decompose_bare_rdonly () =
  Alcotest.(check (list string)) "bare O_RDONLY" [ "O_RDONLY" ]
    (List.map Open_flags.flag_name (Open_flags.decompose 0))

let test_flags_decompose_typical () =
  let mask = Open_flags.of_flags Open_flags.[ O_WRONLY; O_CREAT; O_TRUNC ] in
  Alcotest.(check (list string)) "creat mask" [ "O_WRONLY"; "O_CREAT"; "O_TRUNC" ]
    (List.map Open_flags.flag_name (Open_flags.decompose mask))

let test_flags_sync_subsumes_dsync () =
  let mask = Open_flags.of_flags Open_flags.[ O_RDONLY; O_SYNC ] in
  check_bool "O_SYNC reported" true (Open_flags.has mask Open_flags.O_SYNC);
  check_bool "O_DSYNC hidden under O_SYNC" false (Open_flags.has mask Open_flags.O_DSYNC)

let test_flags_dsync_alone () =
  let mask = Open_flags.of_flags Open_flags.[ O_RDONLY; O_DSYNC ] in
  check_bool "O_DSYNC visible" true (Open_flags.has mask Open_flags.O_DSYNC);
  check_bool "not O_SYNC" false (Open_flags.has mask Open_flags.O_SYNC)

let test_flags_tmpfile_subsumes_directory () =
  let mask = Open_flags.of_flags Open_flags.[ O_RDWR; O_TMPFILE ] in
  check_bool "O_TMPFILE" true (Open_flags.has mask Open_flags.O_TMPFILE);
  check_bool "O_DIRECTORY hidden" false (Open_flags.has mask Open_flags.O_DIRECTORY)

let test_flags_access_modes () =
  let open Open_flags in
  check_bool "rdonly readable" true (readable (of_flags [ O_RDONLY ]));
  check_bool "rdonly not writable" false (writable (of_flags [ O_RDONLY ]));
  check_bool "wronly writable" true (writable (of_flags [ O_WRONLY ]));
  check_bool "wronly not readable" false (readable (of_flags [ O_WRONLY ]));
  check_bool "rdwr both r" true (readable (of_flags [ O_RDWR ]));
  check_bool "rdwr both w" true (writable (of_flags [ O_RDWR ]))

let test_flags_multiple_access_modes_rejected () =
  Alcotest.check_raises "two access modes" (Invalid_argument "Open_flags.of_flags: multiple access modes")
    (fun () -> ignore (Open_flags.of_flags Open_flags.[ O_RDWR; O_WRONLY ]))

let test_flags_string_roundtrip () =
  let mask = Open_flags.of_flags Open_flags.[ O_RDWR; O_CREAT; O_EXCL; O_DIRECT ] in
  (match Open_flags.of_string (Open_flags.to_string mask) with
   | Some mask' -> check_int "mask roundtrip" mask mask'
   | None -> Alcotest.fail "no parse");
  check_bool "bad name" true (Open_flags.of_string "O_BOGUS" = None)

let test_flags_count () =
  check_int "bare rdonly counts 1" 1 (Open_flags.count_flags 0);
  check_int "four flags" 4
    (Open_flags.count_flags (Open_flags.of_flags Open_flags.[ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ]))

let flags_decompose_roundtrip_prop =
  (* decomposing any random subset (one access mode + others) and
     recombining yields a mask that decomposes identically *)
  QCheck.Test.make ~name:"flag decompose/of_flags roundtrip"
    QCheck.(int_range 0 0xFFFFFF)
    (fun bits ->
      let mask = bits land lnot 0o3 lor (bits land 0o3) in
      let flags = Open_flags.decompose mask in
      let mask' = Open_flags.of_flags flags in
      Open_flags.decompose mask' = flags)

(* --- Mode --- *)

let test_mode_decompose () =
  Alcotest.(check (list string)) "0644"
    [ "S_IRUSR"; "S_IWUSR"; "S_IRGRP"; "S_IROTH" ]
    (List.map Mode.bit_name (Mode.decompose 0o644))

let test_mode_of_bits () =
  check_int "rebuild 0644" 0o644
    (Mode.of_bits Mode.[ S_IRUSR; S_IWUSR; S_IRGRP; S_IROTH ])

let test_mode_valid () =
  check_bool "0644 valid" true (Mode.valid 0o644);
  check_bool "7777 valid" true (Mode.valid 0o7777);
  check_bool "out of range" false (Mode.valid 0o200000)

let test_mode_octal_roundtrip () =
  match Mode.of_octal_string (Mode.to_octal_string 0o1755) with
  | Some m -> check_int "roundtrip" 0o1755 m
  | None -> Alcotest.fail "no parse"

let test_mode_permissions () =
  check_bool "owner reads 0644" true (Mode.readable_by 0o644 `Owner);
  check_bool "other writes 0644" false (Mode.writable_by 0o644 `Other);
  check_bool "group executes 0741" false (Mode.executable_by 0o741 `Group);
  check_bool "other executes 0751" true (Mode.executable_by 0o751 `Other)

let mode_roundtrip_prop =
  QCheck.Test.make ~name:"mode decompose/of_bits roundtrip" QCheck.(int_range 0 0o7777)
    (fun m -> Mode.of_bits (Mode.decompose m) = m)

(* --- Whence / Xattr_flag --- *)

let test_whence_roundtrip () =
  List.iter
    (fun w ->
      check_bool "name roundtrip" true (Whence.of_string (Whence.to_string w) = Some w);
      check_bool "code roundtrip" true (Whence.of_code (Whence.to_code w) = Some w))
    Whence.all

let test_xattr_flag_roundtrip () =
  List.iter
    (fun f ->
      check_bool "name roundtrip" true (Xattr_flag.of_string (Xattr_flag.to_string f) = Some f);
      check_bool "code roundtrip" true (Xattr_flag.of_code (Xattr_flag.to_code f) = Some f))
    Xattr_flag.all

(* --- Model: bases, variants --- *)

let test_27_variants () = check_int "27 syscalls" 27 (List.length Model.all_variants)
let test_11_bases () = check_int "11 base syscalls" 11 (List.length Model.all_bases)

let test_variant_names_unique () =
  let names = List.map Model.variant_name Model.all_variants in
  check_int "unique names" (List.length names) (List.length (List.sort_uniq compare names))

let test_variant_name_roundtrip () =
  List.iter
    (fun v -> check_bool "roundtrip" true (Model.variant_of_name (Model.variant_name v) = Some v))
    Model.all_variants

let test_variants_partition_bases () =
  let total =
    List.fold_left (fun acc b -> acc + List.length (Model.variants_of_base b)) 0 Model.all_bases
  in
  check_int "every variant belongs to exactly one base" 27 total

let test_base_of_variant_consistent () =
  List.iter
    (fun b ->
      List.iter
        (fun v -> check_bool "consistent" true (Model.base_of_variant v = b))
        (Model.variants_of_base b))
    Model.all_bases

let test_errno_domains_within_open_for_figure4 () =
  check_int "open domain is the manual page" 27
    (List.length (Model.errno_domain Model.Open))

let test_errno_domains_nonempty () =
  List.iter
    (fun b -> check_bool "non-empty domain" true (Model.errno_domain b <> []))
    Model.all_bases

let test_byte_count_syscalls () =
  check_bool "read returns bytes" true (Model.returns_byte_count Model.Read);
  check_bool "open does not" false (Model.returns_byte_count Model.Open);
  check_bool "lseek returns offset" true (Model.returns_byte_count Model.Lseek)

(* --- Model: smart constructors --- *)

let test_pread_requires_offset () =
  Alcotest.check_raises "pread64 without offset"
    (Invalid_argument "Model.read: pread64 requires an offset") (fun () ->
      ignore (Model.read ~variant:Model.Sys_pread64 ~fd:3 ~count:10 ()))

let test_read_rejects_offset () =
  Alcotest.check_raises "read with offset"
    (Invalid_argument "Model.read: offset only valid for pread64") (fun () ->
      ignore (Model.read ~offset:5 ~fd:3 ~count:10 ()))

let test_truncate_variant_inference () =
  check_bool "path infers truncate" true
    (Model.variant_of_call (Model.truncate ~target:(Model.Path "/a") ~length:0 ())
     = Model.Sys_truncate);
  check_bool "fd infers ftruncate" true
    (Model.variant_of_call (Model.truncate ~target:(Model.Fd 3) ~length:0 ())
     = Model.Sys_ftruncate)

let test_truncate_variant_mismatch () =
  Alcotest.check_raises "ftruncate with path"
    (Invalid_argument "Model.truncate: ftruncate takes an fd") (fun () ->
      ignore (Model.truncate ~variant:Model.Sys_ftruncate ~target:(Model.Path "/a") ~length:0 ()))

let test_creat_forces_flags () =
  match Model.open_ ~variant:Model.Sys_creat ~flags:0 "/x" with
  | Model.Open_call { flags; _ } ->
    check_bool "creat is WRONLY|CREAT|TRUNC" true
      Open_flags.(has flags O_WRONLY && has flags O_CREAT && has flags O_TRUNC)
  | _ -> Alcotest.fail "wrong constructor"

let test_chdir_variants () =
  check_bool "path chdir" true
    (Model.variant_of_call (Model.chdir (Model.Path "/")) = Model.Sys_chdir);
  check_bool "fd fchdir" true (Model.variant_of_call (Model.chdir (Model.Fd 3)) = Model.Sys_fchdir)

(* --- Model: serialization --- *)

let sample_calls =
  let open Model in
  [ open_ ~flags:(Open_flags.of_flags Open_flags.[ O_WRONLY; O_CREAT ]) ~mode:0o644 "/mnt/test/a";
    open_ ~variant:Sys_openat ~flags:0 "/mnt/test/b with space";
    open_ ~variant:Sys_creat ~flags:0 ~mode:0o600 "/mnt/test/\"quoted\"";
    open_ ~variant:Sys_openat2 ~flags:(Open_flags.of_flags Open_flags.[ O_RDONLY; O_CLOEXEC ]) "/mnt/test/c";
    read ~fd:3 ~count:4096 ();
    read ~variant:Sys_pread64 ~offset:123 ~fd:4 ~count:0 ();
    read ~variant:Sys_readv ~fd:5 ~count:65536 ();
    write ~fd:3 ~count:0 ();
    write ~variant:Sys_pwrite64 ~offset:0 ~fd:3 ~count:270532608 ();
    write ~variant:Sys_writev ~fd:9 ~count:17 ();
    lseek ~fd:3 ~offset:(-5) ~whence:Whence.SEEK_CUR;
    lseek ~fd:3 ~offset:0 ~whence:Whence.SEEK_HOLE;
    truncate ~target:(Path "/mnt/test/a") ~length:100 ();
    truncate ~target:(Fd 7) ~length:0 ();
    mkdir ~mode:0o755 "/mnt/test/d";
    mkdir ~variant:Sys_mkdirat ~mode:0o1777 "/mnt/test/sticky";
    chmod ~target:(Path "/mnt/test/a") ~mode:0o4755 ();
    chmod ~target:(Fd 3) ~mode:0 ();
    chmod ~variant:Sys_fchmodat ~target:(Path "/mnt/test/a") ~mode:0o700 ();
    close 3;
    chdir (Path "/mnt/test");
    chdir (Fd 4);
    setxattr ~target:(Path "/mnt/test/a") ~name:"user.k" ~size:65536 ();
    setxattr ~variant:Sys_lsetxattr ~flags:Xattr_flag.XATTR_CREATE ~target:(Path "/l")
      ~name:"user.x" ~size:0 ();
    setxattr ~target:(Fd 3) ~name:"trusted.z" ~size:10 ~flags:Xattr_flag.XATTR_REPLACE ();
    getxattr ~target:(Path "/mnt/test/a") ~name:"user.k" ~size:0 ();
    getxattr ~variant:Sys_lgetxattr ~target:(Path "/l") ~name:"user.x" ~size:4096 ();
    getxattr ~target:(Fd 3) ~name:"user.k" ~size:64 () ]

let test_call_roundtrip () =
  List.iter
    (fun call ->
      let line = Model.call_to_string call in
      match Model.call_of_string line with
      | Ok call' -> check_string "roundtrip" line (Model.call_to_string call')
      | Error msg -> Alcotest.failf "parse failed for %s: %s" line msg)
    sample_calls

let test_call_covers_all_variants () =
  (* the sample list exercises every serialization shape *)
  let variants = List.sort_uniq compare (List.map Model.variant_of_call sample_calls) in
  check_int "all 27 variants serialized" 27 (List.length variants)

let test_call_parse_errors () =
  List.iter
    (fun line ->
      match Model.call_of_string line with
      | Ok _ -> Alcotest.failf "expected failure for %S" line
      | Error _ -> ())
    [ "nonsense"; "frob(fd=3)"; "open(path=\"/a\")"; "read(fd=x, count=1)";
      "lseek(fd=1, offset=2, whence=SEEK_NOWHERE)"; "close(fd=)"; "open(path=/a, flags=0, mode=0o0)" ]

let test_outcome_roundtrip () =
  List.iter
    (fun o ->
      let s = Model.outcome_to_string o in
      match Model.outcome_of_string s with
      | Ok o' -> check_string "outcome roundtrip" s (Model.outcome_to_string o')
      | Error msg -> Alcotest.failf "outcome parse failed for %s: %s" s msg)
    [ Model.Ret 0; Model.Ret 3; Model.Ret max_int; Model.Err Errno.ENOENT;
      Model.Err Errno.EDQUOT ]

let test_outcome_parse_errors () =
  List.iter
    (fun s ->
      match Model.outcome_of_string s with
      | Ok _ -> Alcotest.failf "expected failure for %S" s
      | Error _ -> ())
    [ "nope"; "ok:x"; "err:EBOGUS"; "" ]

(* Property: a randomly generated call round-trips through the text form. *)
let gen_call =
  let open QCheck.Gen in
  let path = map (fun s -> "/mnt/test/" ^ s) (string_size ~gen:(char_range 'a' 'z') (return 6)) in
  let name = map (fun s -> "user." ^ s) (string_size ~gen:(char_range 'a' 'z') (return 4)) in
  let flags =
    map
      (fun bits -> bits land 0o27777777)
      (int_range 0 0o27777777)
  in
  oneof
    [ map3 (fun p f m -> Model.open_ ~flags:f ~mode:(m land 0o7777) p) path flags int;
      map2 (fun fd count -> Model.read ~fd:(abs fd mod 100) ~count:(abs count) ()) int int;
      map3
        (fun fd count off ->
          Model.write ~variant:Model.Sys_pwrite64 ~offset:(abs off) ~fd:(abs fd mod 100)
            ~count:(abs count) ())
        int int int;
      map3
        (fun fd off w -> Model.lseek ~fd:(abs fd mod 100) ~offset:off ~whence:w)
        int int (oneofl Whence.all);
      map2 (fun p len -> Model.truncate ~target:(Model.Path p) ~length:(abs len) ()) path int;
      map2 (fun p m -> Model.mkdir ~mode:(m land 0o7777) p) path int;
      map2
        (fun p size -> Model.setxattr ~target:(Model.Path p) ~name:"user.q" ~size:(abs size mod 100000) ())
        path int;
      map2 (fun p n -> Model.getxattr ~target:(Model.Path p) ~name:n ~size:64 ()) path name ]

let call_roundtrip_prop =
  QCheck.Test.make ~name:"random call serialization roundtrip" ~count:500
    (QCheck.make gen_call) (fun call ->
      match Model.call_of_string (Model.call_to_string call) with
      | Ok call' -> Model.call_to_string call' = Model.call_to_string call
      | Error _ -> false)

let suites =
  [ ( "syscall.errno",
      [ Alcotest.test_case "name roundtrip" `Quick test_errno_roundtrip;
        Alcotest.test_case "open manual domain has 27 codes" `Quick test_errno_open_domain_size;
        Alcotest.test_case "codes positive and unique" `Quick test_errno_codes_positive_unique;
        Alcotest.test_case "unknown name" `Quick test_errno_unknown;
        Alcotest.test_case "descriptions" `Quick test_errno_describe_nonempty ] );
    ( "syscall.flags",
      [ Alcotest.test_case "21-flag domain" `Quick test_flags_domain_size;
        Alcotest.test_case "O_RDONLY encodes as 0" `Quick test_flags_rdonly_is_zero;
        Alcotest.test_case "bare O_RDONLY decomposes" `Quick test_flags_decompose_bare_rdonly;
        Alcotest.test_case "typical decompose" `Quick test_flags_decompose_typical;
        Alcotest.test_case "O_SYNC subsumes O_DSYNC" `Quick test_flags_sync_subsumes_dsync;
        Alcotest.test_case "O_DSYNC alone" `Quick test_flags_dsync_alone;
        Alcotest.test_case "O_TMPFILE subsumes O_DIRECTORY" `Quick
          test_flags_tmpfile_subsumes_directory;
        Alcotest.test_case "access modes" `Quick test_flags_access_modes;
        Alcotest.test_case "multiple access modes rejected" `Quick
          test_flags_multiple_access_modes_rejected;
        Alcotest.test_case "string roundtrip" `Quick test_flags_string_roundtrip;
        Alcotest.test_case "count_flags" `Quick test_flags_count;
        QCheck_alcotest.to_alcotest flags_decompose_roundtrip_prop ] );
    ( "syscall.mode",
      [ Alcotest.test_case "decompose 0644" `Quick test_mode_decompose;
        Alcotest.test_case "of_bits" `Quick test_mode_of_bits;
        Alcotest.test_case "validity" `Quick test_mode_valid;
        Alcotest.test_case "octal roundtrip" `Quick test_mode_octal_roundtrip;
        Alcotest.test_case "permission predicates" `Quick test_mode_permissions;
        QCheck_alcotest.to_alcotest mode_roundtrip_prop ] );
    ( "syscall.categorical",
      [ Alcotest.test_case "whence roundtrip" `Quick test_whence_roundtrip;
        Alcotest.test_case "xattr flag roundtrip" `Quick test_xattr_flag_roundtrip ] );
    ( "syscall.model",
      [ Alcotest.test_case "27 variants" `Quick test_27_variants;
        Alcotest.test_case "11 bases" `Quick test_11_bases;
        Alcotest.test_case "variant names unique" `Quick test_variant_names_unique;
        Alcotest.test_case "variant name roundtrip" `Quick test_variant_name_roundtrip;
        Alcotest.test_case "variants partition bases" `Quick test_variants_partition_bases;
        Alcotest.test_case "base_of_variant consistent" `Quick test_base_of_variant_consistent;
        Alcotest.test_case "open errno domain" `Quick test_errno_domains_within_open_for_figure4;
        Alcotest.test_case "errno domains non-empty" `Quick test_errno_domains_nonempty;
        Alcotest.test_case "byte-count syscalls" `Quick test_byte_count_syscalls;
        Alcotest.test_case "pread requires offset" `Quick test_pread_requires_offset;
        Alcotest.test_case "read rejects offset" `Quick test_read_rejects_offset;
        Alcotest.test_case "truncate variant inference" `Quick test_truncate_variant_inference;
        Alcotest.test_case "truncate variant mismatch" `Quick test_truncate_variant_mismatch;
        Alcotest.test_case "creat forces flags" `Quick test_creat_forces_flags;
        Alcotest.test_case "chdir variants" `Quick test_chdir_variants ] );
    ( "syscall.serialization",
      [ Alcotest.test_case "call roundtrip" `Quick test_call_roundtrip;
        Alcotest.test_case "samples cover all 27 variants" `Quick test_call_covers_all_variants;
        Alcotest.test_case "parse errors" `Quick test_call_parse_errors;
        Alcotest.test_case "outcome roundtrip" `Quick test_outcome_roundtrip;
        Alcotest.test_case "outcome parse errors" `Quick test_outcome_parse_errors;
        QCheck_alcotest.to_alcotest call_roundtrip_prop ] ) ]
