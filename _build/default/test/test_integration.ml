(* End-to-end pipeline tests: suite -> raw trace file -> parse -> filter
   -> coverage must equal the live-sink coverage, and the CLI-level flows
   compose. *)

open Iocov_syscall
module Runner = Iocov_suites.Runner
module Coverage = Iocov_core.Coverage
module Arg_class = Iocov_core.Arg_class
module Event = Iocov_trace.Event
module Format_io = Iocov_trace.Format_io
module Filter = Iocov_trace.Filter
module Tcd = Iocov_core.Tcd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let coverage_equal a b =
  List.for_all
    (fun arg -> Coverage.input_series a arg = Coverage.input_series b arg)
    Arg_class.all
  && List.for_all
       (fun base -> Coverage.output_series a base = Coverage.output_series b base)
       Model.all_bases

let test_offline_equals_online () =
  (* run CrashMonkey with both a live coverage sink and a raw file sink;
     re-analyzing the file through the same filter must reproduce the
     coverage exactly *)
  let live = Coverage.create () in
  let path = Filename.temp_file "iocov_integration" ".trace" in
  let oc = open_out path in
  let sink = Format_io.sink_channel oc in
  let _failures, _stats =
    Iocov_suites.Crashmonkey.run ~seed:21 ~scale:0.02 ~sink ~coverage:live ()
  in
  close_out oc;
  let offline = Coverage.create () in
  let filter = Filter.mount_point Iocov_suites.Crashmonkey.mount in
  let ic = open_in path in
  let result =
    Format_io.fold_channel ic ~init:() ~f:(fun () e ->
        if Filter.keeps filter e then
          match e.Event.payload with
          | Event.Tracked call -> Coverage.observe offline call e.Event.outcome
          | Event.Aux _ -> ())
  in
  close_in ic;
  Sys.remove path;
  (match result with Ok () -> () | Error msg -> Alcotest.failf "parse: %s" msg);
  check_bool "offline analysis reproduces live coverage" true (coverage_equal live offline)

let test_wrong_mount_filters_everything () =
  let live = Coverage.create () in
  let path = Filename.temp_file "iocov_integration" ".trace" in
  let oc = open_out path in
  let _ =
    Iocov_suites.Crashmonkey.run ~seed:22 ~scale:0.02 ~sink:(Format_io.sink_channel oc)
      ~coverage:live ()
  in
  close_out oc;
  let filter = Filter.mount_point "/somewhere/else" in
  let ic = open_in path in
  let kept =
    Result.get_ok
      (Format_io.fold_channel ic ~init:0 ~f:(fun acc e ->
           if Filter.keeps filter e then acc + 1 else acc))
  in
  close_in ic;
  Sys.remove path;
  check_int "nothing kept under the wrong mount" 0 kept

let test_trace_contains_aux_records () =
  let live = Coverage.create () in
  let path = Filename.temp_file "iocov_integration" ".trace" in
  let oc = open_out path in
  let _ =
    Iocov_suites.Crashmonkey.run ~seed:23 ~scale:0.02 ~sink:(Format_io.sink_channel oc)
      ~coverage:live ()
  in
  close_out oc;
  let ic = open_in path in
  let tracked, aux =
    Result.get_ok
      (Format_io.fold_channel ic ~init:(0, 0) ~f:(fun (t, a) e ->
           if Event.is_tracked e then (t + 1, a) else (t, a + 1)))
  in
  close_in ic;
  Sys.remove path;
  check_bool "tracked records present" true (tracked > 0);
  check_bool "aux records present (fsync/sync/crash)" true (aux > 0)

let test_figure5_crossover_exists_end_to_end () =
  (* the paper's qualitative Figure 5 claim on real simulated coverage:
     CrashMonkey wins at small targets, xfstests at large ones *)
  let cm = Runner.run ~seed:5 ~scale:0.05 Runner.Crashmonkey in
  let xf = Runner.run ~seed:5 ~scale:0.05 Runner.Xfstests in
  let freqs r =
    Array.of_list
      (List.map snd (Coverage.input_series r.Runner.coverage Arg_class.Open_flags_arg))
  in
  let f_cm = freqs cm and f_xf = freqs xf in
  match Tcd.crossover ~f1:f_cm ~f2:f_xf ~lo:1.0 ~hi:1e7 with
  | Some t ->
    check_bool "crossover in a plausible range" true (t > 1.0 && t < 1e7);
    check_bool "CrashMonkey better below" true
      (Tcd.tcd_uniform ~frequencies:f_cm ~target:1.0
       < Tcd.tcd_uniform ~frequencies:f_xf ~target:1.0);
    check_bool "xfstests better above" true
      (Tcd.tcd_uniform ~frequencies:f_xf ~target:1e7
       < Tcd.tcd_uniform ~frequencies:f_cm ~target:1e7)
  | None -> Alcotest.fail "expected a TCD crossover"

let test_merged_coverage_is_union () =
  (* merging the two suites' coverage covers at least what each covers *)
  let cm = Runner.run ~seed:5 ~scale:0.02 Runner.Crashmonkey in
  let xf = Runner.run ~seed:5 ~scale:0.02 Runner.Xfstests in
  let merged = Coverage.copy cm.Runner.coverage in
  Coverage.merge_into ~dst:merged xf.Runner.coverage;
  List.iter
    (fun arg ->
      let untested_merged = List.length (Coverage.untested_inputs merged arg) in
      let untested_cm = List.length (Coverage.untested_inputs cm.Runner.coverage arg) in
      let untested_xf = List.length (Coverage.untested_inputs xf.Runner.coverage arg) in
      check_bool
        (Arg_class.name arg ^ " merged untested <= min of parts")
        true
        (untested_merged <= min untested_cm untested_xf))
    Arg_class.all

let suites =
  [ ( "integration",
      [ Alcotest.test_case "offline trace analysis equals live" `Slow test_offline_equals_online;
        Alcotest.test_case "wrong mount filters everything" `Slow
          test_wrong_mount_filters_everything;
        Alcotest.test_case "raw trace keeps aux records" `Slow test_trace_contains_aux_records;
        Alcotest.test_case "Figure 5 crossover end-to-end" `Slow
          test_figure5_crossover_exists_end_to_end;
        Alcotest.test_case "merged coverage is a union" `Slow test_merged_coverage_is_union ] ) ]
