(* Tests for the simulated test suites: determinism, clean oracles on a
   correct file system, paper-shape assertions, scaling, and fault
   detection behaviour. *)

open Iocov_syscall
module Runner = Iocov_suites.Runner
module Coverage = Iocov_core.Coverage
module Arg_class = Iocov_core.Arg_class
module Partition = Iocov_core.Partition
module Combos = Iocov_core.Combos
module Fault = Iocov_vfs.Fault
module Log2 = Iocov_util.Log2

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Small-scale runs shared by the shape tests (computed once). *)
let cm = lazy (Runner.run ~seed:5 ~scale:0.05 Runner.Crashmonkey)
let xf = lazy (Runner.run ~seed:5 ~scale:0.05 Runner.Xfstests)

let flag_count cov flag =
  Coverage.input_count cov Arg_class.Open_flags_arg (Partition.P_flag flag)

let test_cm_oracle_clean () =
  let r = Lazy.force cm in
  Alcotest.(check (list string)) "no failures on a correct fs" [] r.Runner.failures

let test_xf_oracle_clean () =
  let r = Lazy.force xf in
  Alcotest.(check (list string)) "no failures on a correct fs" [] r.Runner.failures

let test_cm_deterministic () =
  let a = Runner.run ~seed:9 ~scale:0.02 Runner.Crashmonkey in
  let b = Runner.run ~seed:9 ~scale:0.02 Runner.Crashmonkey in
  check_int "same events" a.Runner.events_total b.Runner.events_total;
  check_bool "same coverage" true
    (Coverage.input_series a.Runner.coverage Arg_class.Open_flags_arg
     = Coverage.input_series b.Runner.coverage Arg_class.Open_flags_arg)

let test_xf_deterministic () =
  let a = Runner.run ~seed:9 ~scale:0.02 Runner.Xfstests in
  let b = Runner.run ~seed:9 ~scale:0.02 Runner.Xfstests in
  check_int "same events" a.Runner.events_total b.Runner.events_total;
  check_bool "same coverage" true
    (Coverage.output_series a.Runner.coverage Model.Open
     = Coverage.output_series b.Runner.coverage Model.Open)

let test_seed_changes_streams () =
  let a = Runner.run ~seed:1 ~scale:0.02 Runner.Xfstests in
  let b = Runner.run ~seed:2 ~scale:0.02 Runner.Xfstests in
  check_bool "different seeds differ somewhere" true
    (a.Runner.events_total <> b.Runner.events_total
     || Coverage.input_series a.Runner.coverage Arg_class.Write_count
        <> Coverage.input_series b.Runner.coverage Arg_class.Write_count)

let test_scale_grows_events () =
  let small = Runner.run ~seed:3 ~scale:0.02 Runner.Xfstests in
  let bigger = Runner.run ~seed:3 ~scale:0.08 Runner.Xfstests in
  check_bool "events grow with scale" true
    (bigger.Runner.events_total > small.Runner.events_total)

let test_cm_runs_300_seq1 () =
  let r = Lazy.force cm in
  check_bool "at least the 300 seq-1 workloads" true (r.Runner.workloads >= 300)

let test_xf_runs_1014_tests () =
  let r = Lazy.force xf in
  check_int "706 generic + 308 ext4" 1014 r.Runner.workloads

let test_filter_drops_noise () =
  let r = Lazy.force xf in
  check_bool "some records filtered" true (r.Runner.events_kept < r.Runner.events_total);
  check_bool "most records kept" true (r.Runner.events_kept * 2 > r.Runner.events_total)

(* --- paper-shape assertions (Figures 2-4, Table 1) --- *)

let test_rdonly_most_popular_both () =
  List.iter
    (fun r ->
      let cov = (Lazy.force r).Runner.coverage in
      let rdonly = flag_count cov Open_flags.O_RDONLY in
      List.iter
        (fun f ->
          check_bool
            (Printf.sprintf "O_RDONLY >= %s" (Open_flags.flag_name f))
            true
            (rdonly >= flag_count cov f))
        Open_flags.all)
    [ cm; xf ]

let test_untested_flags_exist () =
  (* O_LARGEFILE, O_ASYNC, O_RSYNC stay untested by both — the paper's
     "some flags are not tested at all" *)
  List.iter
    (fun r ->
      let cov = (Lazy.force r).Runner.coverage in
      List.iter
        (fun f ->
          check_int (Open_flags.flag_name f ^ " untested") 0 (flag_count cov f))
        Open_flags.[ O_LARGEFILE; O_ASYNC; O_RSYNC ])
    [ cm; xf ]

let test_xfstests_covers_more_flags () =
  let cov_cm = (Lazy.force cm).Runner.coverage in
  let cov_xf = (Lazy.force xf).Runner.coverage in
  let covered cov =
    List.length
      (List.filter (fun f -> flag_count cov f > 0) Open_flags.all)
  in
  check_bool "xfstests covers more distinct flags" true (covered cov_xf > covered cov_cm)

let test_table1_shapes () =
  let pct cov = Combos.percent_by_flag_count ~max_n:6 (Coverage.open_flag_sets cov) in
  let cm_row = pct (Lazy.force cm).Runner.coverage in
  let xf_row = pct (Lazy.force xf).Runner.coverage in
  let nth = List.nth in
  (* four-flag combinations dominate for both suites *)
  check_bool "CM 4-flag dominant" true
    (nth cm_row 3 > nth cm_row 0 && nth cm_row 3 > nth cm_row 1 && nth cm_row 3 > nth cm_row 2);
  check_bool "XF 4-flag dominant" true
    (nth xf_row 3 > nth xf_row 0 && nth xf_row 3 > nth xf_row 1 && nth xf_row 3 > nth xf_row 2);
  (* second place: 3 flags for CrashMonkey, 2 flags for xfstests *)
  check_bool "CM second is 3 flags" true (nth cm_row 2 > nth cm_row 1);
  check_bool "XF second is 2 flags" true (nth xf_row 1 > nth xf_row 2);
  (* nobody combines more than 6 flags, and xfstests does reach 5 and 6 *)
  check_bool "XF has 5-flag tail" true (nth xf_row 4 > 0.0);
  check_bool "XF has 6-flag tail" true (nth xf_row 5 > 0.0);
  check_bool "CM stops at 5" true (nth cm_row 5 = 0.0)

let test_write_sizes_shape () =
  let cov_cm = (Lazy.force cm).Runner.coverage in
  let cov_xf = (Lazy.force xf).Runner.coverage in
  let count cov b = Coverage.input_count cov Arg_class.Write_count (Partition.P_bucket b) in
  (* zero-size writes: tested by xfstests, never by CrashMonkey *)
  check_bool "XF writes size 0" true (count cov_xf Log2.Zero > 0);
  check_int "CM never writes size 0" 0 (count cov_cm Log2.Zero);
  (* no write above 258 MiB despite 64-bit sizes *)
  List.iter
    (fun k ->
      check_int (Printf.sprintf "bucket 2^%d empty (CM)" k) 0 (count cov_cm (Log2.Pow2 k));
      check_int (Printf.sprintf "bucket 2^%d empty (XF)" k) 0 (count cov_xf (Log2.Pow2 k)))
    [ 29; 30; 31; 32 ];
  (* the 258 MiB maximum lands in bucket 28 for xfstests only *)
  check_bool "XF max write at 2^28" true (count cov_xf (Log2.Pow2 28) > 0);
  check_int "CM stops far lower" 0 (count cov_cm (Log2.Pow2 28));
  (* CrashMonkey misses many sizes xfstests covers *)
  let covered cov =
    List.length
      (List.filter (fun (_, n) -> n > 0) (Coverage.input_series cov Arg_class.Write_count))
  in
  check_bool "XF covers more size buckets" true (covered cov_xf > covered cov_cm)

let test_output_coverage_shape () =
  let cov_cm = (Lazy.force cm).Runner.coverage in
  let cov_xf = (Lazy.force xf).Runner.coverage in
  let err cov e = Coverage.output_count cov Model.Open (Partition.O_err e) in
  let distinct_errs cov =
    List.length
      (List.filter
         (fun (o, n) -> Partition.output_is_error o && n > 0)
         (Coverage.output_series cov Model.Open))
  in
  (* xfstests covers more error cases than CrashMonkey ... *)
  check_bool "XF covers more open errnos" true (distinct_errs cov_xf > distinct_errs cov_cm);
  (* ... except ENOTDIR *)
  check_bool "CM covers open ENOTDIR" true (err cov_cm Errno.ENOTDIR > 0);
  check_int "XF does not" 0 (err cov_xf Errno.ENOTDIR);
  (* and many codes remain untested by both *)
  List.iter
    (fun e ->
      check_int (Errno.to_string e ^ " untested (CM)") 0 (err cov_cm e);
      check_int (Errno.to_string e ^ " untested (XF)") 0 (err cov_xf e))
    Errno.[ E2BIG; EXDEV; ENOMEM ]

let test_xfstests_variant_coverage () =
  let cov = (Lazy.force xf).Runner.coverage in
  (* the suite exercises open variants, p-variants, vectored IO, and the
     at-variants of mkdir/chmod *)
  List.iter
    (fun v ->
      check_bool (Model.variant_name v ^ " exercised") true (Coverage.variant_calls cov v > 0))
    Model.[ Sys_openat; Sys_openat2; Sys_creat; Sys_pread64; Sys_pwrite64; Sys_readv;
            Sys_writev; Sys_mkdirat; Sys_fchmod; Sys_fchmodat; Sys_fchdir; Sys_lsetxattr;
            Sys_fsetxattr; Sys_lgetxattr; Sys_fgetxattr; Sys_ftruncate ]

let test_cm_seq2_workloads () =
  (* seq-2 bound: extra workloads run, crash oracles stay clean *)
  let coverage = Coverage.create () in
  let failures, stats =
    Iocov_suites.Crashmonkey.run ~seed:6 ~scale:0.02 ~seq2:40 ~coverage ()
  in
  Alcotest.(check (list string)) "seq-2 oracles clean" [] failures;
  check_bool "extra workloads counted" true (stats.Iocov_suites.Crashmonkey.workloads_run >= 340);
  check_bool "extra crashes simulated" true
    (stats.Iocov_suites.Crashmonkey.crashes_simulated >= 340)

(* --- LTP (extension suite) --- *)

let ltp = lazy (Runner.run ~seed:5 ~scale:1.0 Runner.Ltp)

let test_ltp_oracle_clean () =
  Alcotest.(check (list string)) "no failures on a correct fs" [] (Lazy.force ltp).Runner.failures

let test_ltp_deterministic () =
  let a = Runner.run ~seed:4 Runner.Ltp and b = Runner.run ~seed:4 Runner.Ltp in
  check_int "same events" a.Runner.events_total b.Runner.events_total;
  check_bool "same open outputs" true
    (Coverage.output_series a.Runner.coverage Model.Open
     = Coverage.output_series b.Runner.coverage Model.Open)

let test_ltp_errno_rich_profile () =
  (* LTP's signature: broad error-code coverage from a tiny event count *)
  let r = Lazy.force ltp in
  check_bool "small volume" true (r.Runner.events_total < 10_000);
  let distinct_errs =
    List.length
      (List.filter
         (fun (o, n) -> n > 0 && Partition.output_is_error o)
         (Coverage.output_series r.Runner.coverage Model.Open))
  in
  check_bool "covers >= 15 open errnos" true (distinct_errs >= 15)

let test_ltp_narrow_input_sizes () =
  (* ... while write-size input coverage stays narrow *)
  let r = Lazy.force ltp in
  let covered =
    List.length
      (List.filter (fun (_, n) -> n > 0)
         (Coverage.input_series r.Runner.coverage Arg_class.Write_count))
  in
  check_bool "few size buckets" true (covered <= 12)

let test_ltp_plain_flag_style () =
  (* LTP never builds the 4+-flag combinations the other suites use *)
  let r = Lazy.force ltp in
  check_bool "at most 3 flags combined" true
    (Iocov_core.Combos.max_flags_combined (Coverage.open_flag_sets r.Runner.coverage) <= 3)

let test_ltp_detects_in_coverage_faults () =
  let r =
    Runner.run ~seed:5 ~faults:[ Fault.Getxattr_empty_enodata ] Runner.Ltp
  in
  (* the empty-value case is outside LTP's probes: stored size 0 never set *)
  ignore r;
  let r2 = Runner.run ~seed:5 ~faults:[ Fault.Truncate_efbig_unchecked ] Runner.Ltp in
  check_bool "EFBIG boundary case caught" true (Runner.detects r2);
  let r3 = Runner.run ~seed:5 ~faults:[ Fault.Seek_hole_off_by_one ] Runner.Ltp in
  check_bool "SEEK_HOLE boundary caught" true (Runner.detects r3)

(* --- fault detection by the suites --- *)

let test_xfstests_catches_seeded_regressions () =
  (* faults inside xfstests' input coverage are caught ... *)
  List.iter
    (fun fault ->
      let r = Runner.run ~seed:5 ~scale:0.02 ~faults:[ fault ] Runner.Xfstests in
      check_bool (Fault.to_string fault ^ " detected") true (Runner.detects r))
    [ Fault.Write_zero_advances_offset; Fault.Truncate_efbig_unchecked;
      Fault.Getxattr_empty_enodata ]

let test_xfstests_misses_fig1_bug () =
  (* ... but Figure 1's max-size xattr bug sits in a partition value the
     suite never exercises, exactly as in the paper *)
  let r = Runner.run ~seed:5 ~scale:0.02 ~faults:[ Fault.Xattr_ibody_overflow ] Runner.Xfstests in
  check_bool "missed despite full code coverage" false (Runner.detects r)

let test_xfstests_misses_largefile_bug () =
  (* O_LARGEFILE is an untested flag, so the fault behind it is invisible *)
  let r = Runner.run ~seed:5 ~scale:0.02 ~faults:[ Fault.Largefile_eoverflow ] Runner.Xfstests in
  check_bool "missed: untested input partition" false (Runner.detects r)

let test_crashmonkey_catches_fsync_bug () =
  let r = Runner.run ~seed:5 ~scale:0.05 ~faults:[ Fault.Fsync_skips_data ] Runner.Crashmonkey in
  check_bool "crash-consistency bug caught" true (Runner.detects r)

let test_crashmonkey_misses_boundary_bugs () =
  (* CrashMonkey's narrow input coverage misses the input-boundary bugs *)
  List.iter
    (fun fault ->
      let r = Runner.run ~seed:5 ~scale:0.02 ~faults:[ fault ] Runner.Crashmonkey in
      check_bool (Fault.to_string fault ^ " missed") false (Runner.detects r))
    [ Fault.Xattr_ibody_overflow; Fault.Largefile_eoverflow; Fault.Write_zero_advances_offset ]

let suites =
  [ ( "suites.basics",
      [ Alcotest.test_case "CrashMonkey oracle clean" `Slow test_cm_oracle_clean;
        Alcotest.test_case "xfstests oracle clean" `Slow test_xf_oracle_clean;
        Alcotest.test_case "CrashMonkey deterministic" `Slow test_cm_deterministic;
        Alcotest.test_case "xfstests deterministic" `Slow test_xf_deterministic;
        Alcotest.test_case "seed sensitivity" `Slow test_seed_changes_streams;
        Alcotest.test_case "scale grows events" `Slow test_scale_grows_events;
        Alcotest.test_case "CrashMonkey 300 seq-1 workloads" `Slow test_cm_runs_300_seq1;
        Alcotest.test_case "xfstests 1014 tests" `Slow test_xf_runs_1014_tests;
        Alcotest.test_case "filter drops out-of-mount noise" `Slow test_filter_drops_noise;
        Alcotest.test_case "CrashMonkey seq-2 workloads" `Slow test_cm_seq2_workloads ] );
    ( "suites.paper_shapes",
      [ Alcotest.test_case "O_RDONLY most popular (Fig 2)" `Slow test_rdonly_most_popular_both;
        Alcotest.test_case "untested flags exist (Fig 2)" `Slow test_untested_flags_exist;
        Alcotest.test_case "xfstests covers more flags (Fig 2)" `Slow
          test_xfstests_covers_more_flags;
        Alcotest.test_case "flag combinations (Table 1)" `Slow test_table1_shapes;
        Alcotest.test_case "write sizes (Fig 3)" `Slow test_write_sizes_shape;
        Alcotest.test_case "open outputs (Fig 4)" `Slow test_output_coverage_shape;
        Alcotest.test_case "variant coverage" `Slow test_xfstests_variant_coverage ] );
    ( "suites.ltp",
      [ Alcotest.test_case "oracle clean" `Quick test_ltp_oracle_clean;
        Alcotest.test_case "deterministic" `Quick test_ltp_deterministic;
        Alcotest.test_case "errno-rich profile" `Quick test_ltp_errno_rich_profile;
        Alcotest.test_case "narrow input sizes" `Quick test_ltp_narrow_input_sizes;
        Alcotest.test_case "plain flag style" `Quick test_ltp_plain_flag_style;
        Alcotest.test_case "catches boundary faults in its probes" `Quick
          test_ltp_detects_in_coverage_faults ] );
    ( "suites.fault_detection",
      [ Alcotest.test_case "xfstests catches in-coverage faults" `Slow
          test_xfstests_catches_seeded_regressions;
        Alcotest.test_case "xfstests misses the Fig-1 xattr bug" `Slow
          test_xfstests_misses_fig1_bug;
        Alcotest.test_case "xfstests misses the O_LARGEFILE bug" `Slow
          test_xfstests_misses_largefile_bug;
        Alcotest.test_case "CrashMonkey catches the fsync bug" `Slow
          test_crashmonkey_catches_fsync_bug;
        Alcotest.test_case "CrashMonkey misses boundary bugs" `Slow
          test_crashmonkey_misses_boundary_bugs ] ) ]
