lib/suites/fuzzer.ml: Array Errno Hashtbl Iocov_core Iocov_syscall Iocov_util Iocov_vfs List Model Open_flags Whence Xattr_flag
