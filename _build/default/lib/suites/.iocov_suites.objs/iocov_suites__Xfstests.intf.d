lib/suites/xfstests.mli: Iocov_core Iocov_trace Iocov_vfs
