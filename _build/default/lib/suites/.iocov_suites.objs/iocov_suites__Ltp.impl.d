lib/suites/ltp.ml: Config Errno Fs Int64 Iocov_core Iocov_syscall Iocov_trace Iocov_util Iocov_vfs List Model Open_flags Printf String Whence Workload Xattr_flag
