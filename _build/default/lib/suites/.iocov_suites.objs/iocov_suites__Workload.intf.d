lib/suites/workload.mli: Errno Iocov_syscall Iocov_trace Iocov_util Iocov_vfs Mode Model Open_flags
