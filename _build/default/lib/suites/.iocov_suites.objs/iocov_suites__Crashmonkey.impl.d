lib/suites/crashmonkey.ml: Config Filename Float Fs Iocov_core Iocov_syscall Iocov_trace Iocov_util Iocov_vfs List Model Open_flags Printf Whence Workload Xattr_flag
