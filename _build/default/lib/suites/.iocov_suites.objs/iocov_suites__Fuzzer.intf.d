lib/suites/fuzzer.mli: Iocov_core Iocov_vfs
