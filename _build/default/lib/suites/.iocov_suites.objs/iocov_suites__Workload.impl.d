lib/suites/workload.ml: Errno Iocov_syscall Iocov_trace Iocov_util Iocov_vfs List Model Open_flags Printf String
