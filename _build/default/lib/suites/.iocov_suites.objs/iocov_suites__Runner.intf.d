lib/suites/runner.mli: Iocov_core Iocov_vfs
