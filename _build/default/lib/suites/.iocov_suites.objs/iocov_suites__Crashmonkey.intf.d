lib/suites/crashmonkey.mli: Iocov_core Iocov_trace Iocov_vfs
