lib/suites/runner.ml: Crashmonkey Iocov_core Ltp String Unix Xfstests
