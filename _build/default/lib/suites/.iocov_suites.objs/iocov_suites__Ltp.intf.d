lib/suites/ltp.mli: Iocov_core Iocov_trace Iocov_vfs
