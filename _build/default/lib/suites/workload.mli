(** Shared machinery for simulated test suites.

    A {!ctx} bundles a fresh file system, a tracer, the suite's mount
    point, a deterministic PRNG, and a failure log.  Suites drive all
    file-system activity through the helpers here so that every syscall
    is traced (and so both suites share one vocabulary of primitive
    actions).  Helpers never raise on syscall failure — suites check
    outcomes explicitly where their oracles demand it. *)

open Iocov_syscall

type ctx = {
  tracer : Iocov_trace.Tracer.t;
  rng : Iocov_util.Prng.t;
  mount : string;
  mutable name_counter : int;
  mutable failures : string list;  (** oracle violations, newest first *)
  mutable current_test : string;
}

val init :
  ?config:Iocov_vfs.Config.t -> ?comm:string -> mount:string -> seed:int -> unit -> ctx
(** Creates the file system, mounts it (creates the mount-point
    directory chain), and returns the context.  The tracer traces from
    the very first syscall, as LTTng would. *)

val fs : ctx -> Iocov_vfs.Fs.t

val begin_test : ctx -> string -> unit
(** Set the current test name (prefixes failure records). *)

val fail : ctx -> string -> unit
(** Record an oracle violation in the current test. *)

val failures : ctx -> string list
(** Oracle violations, oldest first. *)

(** {2 Traced primitives} — thin wrappers over {!Iocov_trace.Tracer.exec}. *)

val call : ctx -> Model.call -> Model.outcome
val aux : ctx -> Iocov_vfs.Fs.aux -> (int, Errno.t) result

val open_fd : ctx -> ?variant:Model.variant -> ?mode:Mode.t -> flags:Open_flags.t -> string -> int option
(** [Some fd] on success. *)

val close_fd : ctx -> int -> unit
val write_fd : ctx -> ?variant:Model.variant -> ?offset:int -> int -> int -> Model.outcome
(** [write_fd ctx fd count]. *)

val read_fd : ctx -> ?variant:Model.variant -> ?offset:int -> int -> int -> Model.outcome

val fresh_name : ctx -> string -> string
(** [fresh_name ctx "f"] is a unique path under the mount point. *)

val fresh_dir : ctx -> string
(** Create (traced) and return a unique directory under the mount. *)

val make_file : ctx -> ?size:int -> string -> string
(** Create a file at the given path (or a fresh one when the name is
    relative) with [size] bytes written, via traced open/write/close.
    Returns the path. *)

val expect_ok : ctx -> string -> Model.outcome -> unit
(** Oracle: record a failure unless the outcome is a success. *)

val expect_ret : ctx -> string -> int -> Model.outcome -> unit
(** Oracle: success with exactly this return value. *)

val expect_err : ctx -> string -> Errno.t -> Model.outcome -> unit
(** Oracle: failure with exactly this error code. *)

val noise : ctx -> unit
(** Emit a few syscalls {e outside} the mount point (config reads, log
    appends) — the traffic the mount-point filter exists to drop. *)
