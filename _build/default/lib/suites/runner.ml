module Coverage = Iocov_core.Coverage

type suite = Crashmonkey | Xfstests | Ltp

let suite_name = function
  | Crashmonkey -> "CrashMonkey"
  | Xfstests -> "xfstests"
  | Ltp -> "LTP"

let suite_of_name s =
  match String.lowercase_ascii s with
  | "crashmonkey" | "cm" -> Some Crashmonkey
  | "xfstests" | "xfs" -> Some Xfstests
  | "ltp" -> Some Ltp
  | _ -> None

type result = {
  suite : suite;
  coverage : Coverage.t;
  failures : string list;
  events_total : int;
  events_kept : int;
  workloads : int;
  elapsed_s : float;
}

let run ?(seed = 42) ?(scale = 1.0) ?(faults = []) suite =
  let coverage = Coverage.create () in
  let t0 = Unix.gettimeofday () in
  match suite with
  | Crashmonkey ->
    let failures, stats = Crashmonkey.run ~seed ~scale ~faults ~coverage () in
    {
      suite;
      coverage;
      failures;
      events_total = stats.Crashmonkey.events_total;
      events_kept = stats.Crashmonkey.events_kept;
      workloads = stats.Crashmonkey.workloads_run;
      elapsed_s = Unix.gettimeofday () -. t0;
    }
  | Xfstests ->
    let failures, stats = Xfstests.run ~seed ~scale ~faults ~coverage () in
    {
      suite;
      coverage;
      failures;
      events_total = stats.Xfstests.events_total;
      events_kept = stats.Xfstests.events_kept;
      workloads = stats.Xfstests.tests_run;
      elapsed_s = Unix.gettimeofday () -. t0;
    }
  | Ltp ->
    let failures, stats = Ltp.run ~seed ~scale ~faults ~coverage () in
    {
      suite;
      coverage;
      failures;
      events_total = stats.Ltp.events_total;
      events_kept = stats.Ltp.events_kept;
      workloads = stats.Ltp.testcases_run;
      elapsed_s = Unix.gettimeofday () -. t0;
    }

let run_both ?seed ?scale ?faults () =
  (run ?seed ?scale ?faults Crashmonkey, run ?seed ?scale ?faults Xfstests)

let detects r = r.failures <> []
