type t = SEEK_SET | SEEK_CUR | SEEK_END | SEEK_DATA | SEEK_HOLE

let all = [ SEEK_SET; SEEK_CUR; SEEK_END; SEEK_DATA; SEEK_HOLE ]

let to_string = function
  | SEEK_SET -> "SEEK_SET"
  | SEEK_CUR -> "SEEK_CUR"
  | SEEK_END -> "SEEK_END"
  | SEEK_DATA -> "SEEK_DATA"
  | SEEK_HOLE -> "SEEK_HOLE"

let of_string s = List.find_opt (fun w -> to_string w = s) all

let to_code = function
  | SEEK_SET -> 0
  | SEEK_CUR -> 1
  | SEEK_END -> 2
  | SEEK_DATA -> 3
  | SEEK_HOLE -> 4

let of_code c = List.find_opt (fun w -> to_code w = c) all
let compare = Stdlib.compare
let equal a b = compare a b = 0
