type t = XATTR_ANY | XATTR_CREATE | XATTR_REPLACE

let all = [ XATTR_ANY; XATTR_CREATE; XATTR_REPLACE ]

let to_string = function
  | XATTR_ANY -> "XATTR_ANY"
  | XATTR_CREATE -> "XATTR_CREATE"
  | XATTR_REPLACE -> "XATTR_REPLACE"

let of_string s = List.find_opt (fun f -> to_string f = s) all
let to_code = function XATTR_ANY -> 0 | XATTR_CREATE -> 1 | XATTR_REPLACE -> 2
let of_code c = List.find_opt (fun f -> to_code f = c) all
let compare = Stdlib.compare
let equal a b = compare a b = 0
