(** The [lseek] [whence] argument — the paper's canonical categorical
    argument: a fixed set of admissible values, each its own partition. *)

type t = SEEK_SET | SEEK_CUR | SEEK_END | SEEK_DATA | SEEK_HOLE

val all : t list
val to_string : t -> string
val of_string : string -> t option
val to_code : t -> int
val of_code : int -> t option
val compare : t -> t -> int
val equal : t -> t -> bool
