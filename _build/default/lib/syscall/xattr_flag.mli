(** The [setxattr] flags argument — categorical: create-only,
    replace-only, or either (0). *)

type t = XATTR_ANY | XATTR_CREATE | XATTR_REPLACE

val all : t list
val to_string : t -> string
val of_string : string -> t option
val to_code : t -> int
val of_code : int -> t option
val compare : t -> t -> int
val equal : t -> t -> bool
