lib/syscall/mode.ml: List Printf String
