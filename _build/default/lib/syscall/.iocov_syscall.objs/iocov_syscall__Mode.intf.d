lib/syscall/mode.mli:
