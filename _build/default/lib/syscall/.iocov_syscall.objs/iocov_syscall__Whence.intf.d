lib/syscall/whence.mli:
