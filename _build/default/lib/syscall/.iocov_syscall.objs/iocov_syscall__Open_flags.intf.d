lib/syscall/open_flags.mli:
