lib/syscall/whence.ml: List Stdlib
