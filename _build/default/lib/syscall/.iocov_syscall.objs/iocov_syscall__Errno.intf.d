lib/syscall/errno.mli:
