lib/syscall/open_flags.ml: List String
