lib/syscall/model.mli: Errno Format Mode Open_flags Whence Xattr_flag
