lib/syscall/xattr_flag.mli:
