lib/syscall/errno.ml: List Stdlib
