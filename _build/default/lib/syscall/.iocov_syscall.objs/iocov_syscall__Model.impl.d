lib/syscall/model.ml: Buffer Errno Format List Mode Open_flags Printf Result Scanf String Whence Xattr_flag
