lib/syscall/xattr_flag.ml: List Stdlib
