lib/trace/tracer.mli: Event Iocov_syscall Iocov_vfs
