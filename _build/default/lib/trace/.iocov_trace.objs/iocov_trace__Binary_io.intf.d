lib/trace/binary_io.mli: Event
