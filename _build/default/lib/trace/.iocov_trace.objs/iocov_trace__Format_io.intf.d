lib/trace/format_io.mli: Event
