lib/trace/syzlang.mli: Hashtbl Iocov_core Iocov_syscall
