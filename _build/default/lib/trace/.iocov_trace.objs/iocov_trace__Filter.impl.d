lib/trace/filter.ml: Buffer Event Iocov_regex List Printf String
