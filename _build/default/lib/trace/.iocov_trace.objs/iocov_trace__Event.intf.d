lib/trace/event.mli: Iocov_syscall
