lib/trace/event.ml: Iocov_syscall
