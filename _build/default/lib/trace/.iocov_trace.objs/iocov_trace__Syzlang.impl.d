lib/trace/syzlang.ml: Buffer Char Hashtbl Int64 Iocov_core Iocov_syscall List Model Printf Result String Whence Xattr_flag
