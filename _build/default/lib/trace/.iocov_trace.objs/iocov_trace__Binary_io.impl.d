lib/trace/binary_io.ml: Array Errno Event Hashtbl In_channel Iocov_syscall List Model Result Stdlib String Whence Xattr_flag
