lib/trace/filter.mli: Event
