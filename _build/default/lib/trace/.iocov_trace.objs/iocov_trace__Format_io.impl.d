lib/trace/format_io.ml: Event In_channel Iocov_syscall List Model Printf Result Scanf String
