lib/trace/tracer.ml: Event Hashtbl Iocov_syscall Iocov_vfs List Model Printf String
