open Iocov_syscall

type program = {
  calls : Model.call list;
  skipped : (int * string) list;
}

(* --- decoded argument values --- *)

type value =
  | Int of int
  | Reg of string
  | Str of string       (* a NUL-terminated string payload *)
  | Data of int         (* a buffer, by length *)
  | Struct of value list
  | Array of value list
  | Nil

let ( let* ) = Result.bind

(* Split a comma-separated argument list at depth 0 (commas inside
   (), [], {}, '...' and "..." do not split). *)
let split_args s =
  let parts = ref [] in
  let buf = Buffer.create 32 in
  let depth = ref 0 in
  let quote = ref None in
  let escaped = ref false in
  String.iter
    (fun c ->
      match !quote with
      | Some q ->
        Buffer.add_char buf c;
        if !escaped then escaped := false
        else if c = '\\' then escaped := true
        else if c = q then quote := None
      | None ->
        (match c with
         | '\'' | '"' ->
           quote := Some c;
           Buffer.add_char buf c
         | '(' | '[' | '{' ->
           incr depth;
           Buffer.add_char buf c
         | ')' | ']' | '}' ->
           decr depth;
           Buffer.add_char buf c
         | ',' when !depth = 0 ->
           parts := Buffer.contents buf :: !parts;
           Buffer.clear buf
         | c -> Buffer.add_char buf c))
    s;
  if Buffer.length buf > 0 || !parts <> [] then parts := Buffer.contents buf :: !parts;
  List.rev_map String.trim !parts

let is_digit c = c >= '0' && c <= '9'

(* syzlang integers are hex (0x...) or decimal; 64-bit constants like
   0xffffffffffffff9c (AT_FDCWD) must wrap to their signed value. *)
let parse_int s =
  match Int64.of_string_opt s with
  | Some v -> Ok (Int64.to_int v)
  | None -> Error (Printf.sprintf "bad integer %S" s)

(* Decode a single-quoted syz string: './file0\x00' *)
let parse_quoted_string s =
  if String.length s < 2 || s.[0] <> '\'' || s.[String.length s - 1] <> '\'' then
    Error (Printf.sprintf "bad string %S" s)
  else begin
    let body = String.sub s 1 (String.length s - 2) in
    let buf = Buffer.create (String.length body) in
    let i = ref 0 in
    let ok = ref true in
    while !i < String.length body do
      let c = body.[!i] in
      if c = '\\' && !i + 3 < String.length body && body.[!i + 1] = 'x' then begin
        (match int_of_string_opt ("0x" ^ String.sub body (!i + 2) 2) with
         | Some code -> if code <> 0 then Buffer.add_char buf (Char.chr code)
         | None -> ok := false);
        i := !i + 4
      end
      else begin
        Buffer.add_char buf c;
        incr i
      end
    done;
    if !ok then Ok (Buffer.contents buf) else Error (Printf.sprintf "bad escape in %S" s)
  end

let rec parse_value s : (value, string) result =
  let s = String.trim s in
  if s = "" || s = "nil" then Ok Nil
  else if String.length s >= 2 && s.[0] = 'r' && String.for_all is_digit (String.sub s 1 (String.length s - 1))
  then Ok (Reg s)
  else if s.[0] = '&' then parse_pointer s
  else if s.[0] = '\'' then
    let* str = parse_quoted_string s in
    Ok (Str str)
  else if s.[0] = '"' then parse_blob s
  else if s.[0] = '{' then
    let* fields = parse_list (String.sub s 1 (String.length s - 2)) in
    Ok (Struct fields)
  else if s.[0] = '[' then
    let* elements = parse_list (String.sub s 1 (String.length s - 2)) in
    Ok (Array elements)
  else
    let* n = parse_int s in
    Ok (Int n)

and parse_list body =
  let parts = List.filter (fun p -> p <> "") (split_args body) in
  List.fold_left
    (fun acc part ->
      let* acc = acc in
      let* v = parse_value part in
      Ok (v :: acc))
    (Ok []) parts
  |> Result.map List.rev

(* "deadbeef" -> Data 4;  ""/100 -> Data 100;  ""/0x64 -> Data 100 *)
and parse_blob s =
  match String.index_from_opt s 1 '"' with
  | None -> Error (Printf.sprintf "unterminated blob %S" s)
  | Some close ->
    let hex = String.sub s 1 (close - 1) in
    let rest = String.sub s (close + 1) (String.length s - close - 1) in
    if rest = "" then Ok (Data (String.length hex / 2))
    else if String.length rest > 1 && rest.[0] = '/' then
      let* n = parse_int (String.sub rest 1 (String.length rest - 1)) in
      Ok (Data n)
    else Error (Printf.sprintf "bad blob suffix %S" s)

(* "&(0x7f0000000000)=payload" or "&(0x7f0000000000/0x18)=payload"; a bare
   pointer with no payload is an output buffer of unknown length. *)
and parse_pointer s =
  if String.length s < 2 || s.[1] <> '(' then Error (Printf.sprintf "bad pointer %S" s)
  else begin
    match String.index_opt s ')' with
    | None -> Error (Printf.sprintf "bad pointer %S" s)
    | Some close ->
      if close + 1 >= String.length s then Ok (Data 0)
      else if s.[close + 1] <> '=' then Error (Printf.sprintf "bad pointer %S" s)
      else parse_value (String.sub s (close + 2) (String.length s - close - 2))
  end

(* --- argument interpretation --- *)

let as_int what = function
  | Int n -> Ok n
  | Data n -> Ok n
  | v ->
    Error
      (Printf.sprintf "%s: expected an integer, got %s" what
         (match v with
          | Reg r -> r
          | Str _ -> "a string"
          | Struct _ -> "a struct"
          | Array _ -> "an array"
          | Nil -> "nil"
          | Int _ | Data _ -> assert false))

let as_fd registers what = function
  | Reg r ->
    (match Hashtbl.find_opt registers r with
     | Some fd -> Ok fd
     | None -> Ok (-1) (* unbound register: a dead descriptor *))
  | Int n -> Ok n
  | _ -> Error (Printf.sprintf "%s: expected a descriptor" what)

let as_path what = function
  | Str s -> Ok s
  | Nil -> Ok ""
  | _ -> Error (Printf.sprintf "%s: expected a pathname" what)

(* total byte length of an iovec array: sum of each struct's final int *)
let iovec_length what v =
  match v with
  | Array elements ->
    List.fold_left
      (fun acc element ->
        let* acc = acc in
        match element with
        | Struct fields ->
          (match List.rev fields with
           | Int len :: _ -> Ok (acc + len)
           | _ -> Error (Printf.sprintf "%s: iovec entry without a length" what))
        | _ -> Error (Printf.sprintf "%s: iovec entry is not a struct" what))
      (Ok 0) elements
  | _ -> Error (Printf.sprintf "%s: expected an iovec array" what)

let as_whence what v =
  let* code = as_int what v in
  match Whence.of_code code with
  | Some w -> Ok w
  | None -> Error (Printf.sprintf "%s: unknown whence %d" what code)

let as_xattr_flags what v =
  let* code = as_int what v in
  match Xattr_flag.of_code code with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: unknown xattr flags %d" what code)

(* --- per-syscall builders --- *)

let arity what expected args =
  if List.length args = expected then Ok ()
  else
    Error
      (Printf.sprintf "%s: expected %d arguments, got %d" what expected (List.length args))

let build registers name args : (Model.call option, string) result =
  let fd = as_fd registers in
  match name with
  | "open" ->
    let* () = arity name 3 args in
    (match args with
     | [ p; f; m ] ->
       let* path = as_path name p in
       let* flags = as_int name f in
       let* mode = as_int name m in
       Ok (Some (Model.open_ ~flags ~mode path))
     | _ -> assert false)
  | "openat" ->
    let* () = arity name 4 args in
    (match args with
     | [ _dirfd; p; f; m ] ->
       let* path = as_path name p in
       let* flags = as_int name f in
       let* mode = as_int name m in
       Ok (Some (Model.open_ ~variant:Model.Sys_openat ~flags ~mode path))
     | _ -> assert false)
  | "creat" ->
    let* () = arity name 2 args in
    (match args with
     | [ p; m ] ->
       let* path = as_path name p in
       let* mode = as_int name m in
       Ok (Some (Model.open_ ~variant:Model.Sys_creat ~flags:0 ~mode path))
     | _ -> assert false)
  | "openat2" ->
    (* openat2(dirfd, path, &open_how{flags, mode, resolve}, size) *)
    let* () = arity name 4 args in
    (match args with
     | [ _dirfd; p; how; _size ] ->
       let* path = as_path name p in
       let* flags, mode =
         match how with
         | Struct (f :: m :: _) ->
           let* flags = as_int name f in
           let* mode = as_int name m in
           Ok (flags, mode)
         | Struct [ f ] ->
           let* flags = as_int name f in
           Ok (flags, 0)
         | _ -> Error "openat2: expected an open_how struct"
       in
       Ok (Some (Model.open_ ~variant:Model.Sys_openat2 ~flags ~mode path))
     | _ -> assert false)
  | "read" | "write" ->
    let* () = arity name 3 args in
    (match args with
     | [ f; _buf; c ] ->
       let* fd = fd name f in
       let* count = as_int name c in
       if name = "read" then Ok (Some (Model.read ~fd ~count ()))
       else Ok (Some (Model.write ~fd ~count ()))
     | _ -> assert false)
  | "pread64" | "pwrite64" ->
    let* () = arity name 4 args in
    (match args with
     | [ f; _buf; c; off ] ->
       let* fd = fd name f in
       let* count = as_int name c in
       let* offset = as_int name off in
       if name = "pread64" then
         Ok (Some (Model.read ~variant:Model.Sys_pread64 ~offset ~fd ~count ()))
       else Ok (Some (Model.write ~variant:Model.Sys_pwrite64 ~offset ~fd ~count ()))
     | _ -> assert false)
  | "readv" | "writev" ->
    let* () = arity name 3 args in
    (match args with
     | [ f; vec; _vlen ] ->
       let* fd = fd name f in
       let* count = iovec_length name vec in
       if name = "readv" then Ok (Some (Model.read ~variant:Model.Sys_readv ~fd ~count ()))
       else Ok (Some (Model.write ~variant:Model.Sys_writev ~fd ~count ()))
     | _ -> assert false)
  | "lseek" ->
    let* () = arity name 3 args in
    (match args with
     | [ f; off; w ] ->
       let* fd = fd name f in
       let* offset = as_int name off in
       let* whence = as_whence name w in
       Ok (Some (Model.lseek ~fd ~offset ~whence))
     | _ -> assert false)
  | "truncate" ->
    let* () = arity name 2 args in
    (match args with
     | [ p; len ] ->
       let* path = as_path name p in
       let* length = as_int name len in
       Ok (Some (Model.truncate ~target:(Model.Path path) ~length ()))
     | _ -> assert false)
  | "ftruncate" ->
    let* () = arity name 2 args in
    (match args with
     | [ f; len ] ->
       let* fd = fd name f in
       let* length = as_int name len in
       Ok (Some (Model.truncate ~target:(Model.Fd fd) ~length ()))
     | _ -> assert false)
  | "mkdir" | "mkdirat" ->
    (match (name, args) with
     | "mkdir", [ p; m ] ->
       let* path = as_path name p in
       let* mode = as_int name m in
       Ok (Some (Model.mkdir ~mode path))
     | "mkdirat", [ _dirfd; p; m ] ->
       let* path = as_path name p in
       let* mode = as_int name m in
       Ok (Some (Model.mkdir ~variant:Model.Sys_mkdirat ~mode path))
     | _ -> Error (name ^ ": bad arity"))
  | "chmod" ->
    let* () = arity name 2 args in
    (match args with
     | [ p; m ] ->
       let* path = as_path name p in
       let* mode = as_int name m in
       Ok (Some (Model.chmod ~target:(Model.Path path) ~mode ()))
     | _ -> assert false)
  | "fchmod" ->
    let* () = arity name 2 args in
    (match args with
     | [ f; m ] ->
       let* fd = fd name f in
       let* mode = as_int name m in
       Ok (Some (Model.chmod ~variant:Model.Sys_fchmod ~target:(Model.Fd fd) ~mode ()))
     | _ -> assert false)
  | "fchmodat" ->
    let* () = arity name 3 args in
    (match args with
     | [ _dirfd; p; m ] ->
       let* path = as_path name p in
       let* mode = as_int name m in
       Ok (Some (Model.chmod ~variant:Model.Sys_fchmodat ~target:(Model.Path path) ~mode ()))
     | _ -> assert false)
  | "close" ->
    let* () = arity name 1 args in
    (match args with
     | [ f ] ->
       let* fd = fd name f in
       Ok (Some (Model.close fd))
     | _ -> assert false)
  | "chdir" ->
    let* () = arity name 1 args in
    (match args with
     | [ p ] ->
       let* path = as_path name p in
       Ok (Some (Model.chdir (Model.Path path)))
     | _ -> assert false)
  | "fchdir" ->
    let* () = arity name 1 args in
    (match args with
     | [ f ] ->
       let* fd = fd name f in
       Ok (Some (Model.chdir (Model.Fd fd)))
     | _ -> assert false)
  | "setxattr" | "lsetxattr" ->
    let* () = arity name 5 args in
    (match args with
     | [ p; nm; _value; sz; fl ] ->
       let* path = as_path name p in
       let* attr = as_path name nm in
       let* size = as_int name sz in
       let* flags = as_xattr_flags name fl in
       let variant = if name = "setxattr" then Model.Sys_setxattr else Model.Sys_lsetxattr in
       Ok (Some (Model.setxattr ~variant ~flags ~target:(Model.Path path) ~name:attr ~size ()))
     | _ -> assert false)
  | "fsetxattr" ->
    let* () = arity name 5 args in
    (match args with
     | [ f; nm; _value; sz; fl ] ->
       let* fd = fd name f in
       let* attr = as_path name nm in
       let* size = as_int name sz in
       let* flags = as_xattr_flags name fl in
       Ok (Some (Model.setxattr ~flags ~target:(Model.Fd fd) ~name:attr ~size ()))
     | _ -> assert false)
  | "getxattr" | "lgetxattr" ->
    let* () = arity name 4 args in
    (match args with
     | [ p; nm; _value; sz ] ->
       let* path = as_path name p in
       let* attr = as_path name nm in
       let* size = as_int name sz in
       let variant = if name = "getxattr" then Model.Sys_getxattr else Model.Sys_lgetxattr in
       Ok (Some (Model.getxattr ~variant ~target:(Model.Path path) ~name:attr ~size ()))
     | _ -> assert false)
  | "fgetxattr" ->
    let* () = arity name 4 args in
    (match args with
     | [ f; nm; _value; sz ] ->
       let* fd = fd name f in
       let* attr = as_path name nm in
       let* size = as_int name sz in
       Ok (Some (Model.getxattr ~target:(Model.Fd fd) ~name:attr ~size ()))
     | _ -> assert false)
  | _ -> Ok None (* not a modeled file-system syscall *)

(* --- lines and programs --- *)

let next_synthetic_fd = ref 100

let parse_line ~registers line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else begin
    (* optional binding: "rN = call(...)" *)
    let binding, rest =
      match String.index_opt line '=' with
      | Some eq
        when eq > 1
             && line.[0] = 'r'
             && String.for_all is_digit (String.trim (String.sub line 1 (eq - 1))) ->
        ( Some ("r" ^ String.trim (String.sub line 1 (eq - 1))),
          String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) )
      | _ -> (None, line)
    in
    match String.index_opt rest '(' with
    | None -> Error (Printf.sprintf "malformed call %S" rest)
    | Some lparen ->
      if rest.[String.length rest - 1] <> ')' then
        Error (Printf.sprintf "malformed call %S" rest)
      else begin
        let name = String.trim (String.sub rest 0 lparen) in
        let body = String.sub rest (lparen + 1) (String.length rest - lparen - 2) in
        (* any binding names a kernel object; bind it even for calls we
           skip so later descriptor uses resolve *)
        let bind () =
          match binding with
          | Some r ->
            incr next_synthetic_fd;
            Hashtbl.replace registers r !next_synthetic_fd
          | None -> ()
        in
        let* args =
          List.fold_left
            (fun acc part ->
              let* acc = acc in
              let* v = parse_value part in
              Ok (v :: acc))
            (Ok [])
            (if String.trim body = "" then [] else split_args body)
          |> Result.map List.rev
        in
        let* call = build registers name args in
        bind ();
        Ok call
      end
  end

let parse_program text =
  let registers = Hashtbl.create 16 in
  let lines = String.split_on_char '\n' text in
  let rec go lineno calls skipped = function
    | [] -> Ok { calls = List.rev calls; skipped = List.rev skipped }
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) calls skipped rest
      else begin
        match parse_line ~registers trimmed with
        | Ok (Some call) -> go (lineno + 1) (call :: calls) skipped rest
        | Ok None ->
          let name =
            match String.index_opt trimmed '(' with
            | Some i ->
              let prefix = String.sub trimmed 0 i in
              (match String.rindex_opt prefix '=' with
               | Some eq -> String.trim (String.sub prefix (eq + 1) (i - eq - 1))
               | None -> String.trim prefix)
            | None -> trimmed
          in
          go (lineno + 1) calls ((lineno, "unsupported syscall " ^ name) :: skipped) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
      end
  in
  go 1 [] [] lines

let observe_program coverage text =
  let* { calls; _ } = parse_program text in
  List.iter (Iocov_core.Coverage.observe_input_only coverage) calls;
  Ok (List.length calls)
