(** The syscall tracer — this project's LTTng.

    Wraps a {!Iocov_vfs.Fs.t}: every call executed through the tracer runs
    on the file system and emits one {!Event.t} to each registered sink.
    The tracer tracks descriptor-to-pathname bindings and the traced
    process's working directory so every record carries an absolute
    [path_hint] for mount-point filtering — the reconstruction a trace
    post-processor performs on real LTTng output. *)

type t

val create : ?pid:int -> ?comm:string -> Iocov_vfs.Fs.t -> t
(** [comm] defaults to ["tester"], [pid] to 1000. *)

val fs : t -> Iocov_vfs.Fs.t

val on_event : t -> (Event.t -> unit) -> unit
(** Register a sink.  Sinks run in registration order on every event. *)

val exec : t -> Iocov_syscall.Model.call -> Iocov_syscall.Model.outcome
(** Run a tracked syscall and emit its record. *)

val exec_aux : t -> Iocov_vfs.Fs.aux -> (int, Iocov_syscall.Errno.t) result
(** Run an auxiliary operation and emit an untracked record. *)

val events_emitted : t -> int

val cwd : t -> string
(** The traced process's current directory as the tracer reconstructs
    it. *)
