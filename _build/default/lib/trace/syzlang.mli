(** Syzkaller program adapter.

    The paper's future work: "For different fuzzers, IOCov needs to apply
    other techniques to trace fuzzed syscalls.  For example, Syzkaller
    logs syscalls with declarative descriptions, which need to be parsed
    by IOCov."  This module parses the syzlang program format —

    {v
    r0 = openat(0xffffffffffffff9c, &(0x7f0000000000)='./file0\x00', 0x42, 0x1ff)
    pwrite64(r0, &(0x7f0000000040)="deadbeef", 0x4, 0x0)
    lseek(r0, 0x10, 0x1)
    close(r0)
    v}

    — into {!Iocov_syscall.Model.call}s for the 27 modeled syscalls:
    result-register bindings ([r0]) are tracked as symbolic descriptors,
    pointer arguments ([&(0x7f...)=...]) are decoded into pathnames,
    buffer lengths, or structs, and flag/mode/whence integers are decoded
    into their domains.  Unsupported syscalls are skipped (a fuzzed
    program mixes file-system calls with sockets, bpf, ...), and the skip
    list is reported so coverage gaps are never silent.

    Program logs carry no return values, so a parsed program feeds
    {e input} coverage only ({!observe_program}); output coverage needs an
    executor log, exactly as the paper notes. *)

type program = {
  calls : Iocov_syscall.Model.call list;  (** supported calls, in order *)
  skipped : (int * string) list;          (** (line, reason) for the rest *)
}

val parse_line :
  registers:(string, int) Hashtbl.t -> string ->
  (Iocov_syscall.Model.call option, string) result
(** Parse one program line.  [Ok None] for blank lines, comments, and
    unsupported syscalls; [Error] for a supported syscall whose arguments
    cannot be decoded.  [registers] accumulates [rN] bindings: a binding
    of a supported open-family call maps [rN] to a synthetic descriptor
    number used when [rN] later appears in fd position. *)

val parse_program : string -> (program, string) result
(** Parse a whole program (one call per line).  Only syntactically
    malformed {e supported} calls fail the parse. *)

val observe_program : Iocov_core.Coverage.t -> string -> (int, string) result
(** Parse and feed the program's input coverage; answers the number of
    calls observed. *)
