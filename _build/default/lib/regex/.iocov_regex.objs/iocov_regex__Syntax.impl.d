lib/regex/syntax.ml: Format List Printf String
