lib/regex/engine.ml: List String Syntax
