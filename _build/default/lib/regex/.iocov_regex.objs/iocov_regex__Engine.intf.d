lib/regex/engine.mli:
