(** Regular-expression abstract syntax and parser.

    IOCov filters trace records with "a set of regular expressions ...
    (e.g., based on the mount point pathname)" (Section 3).  This is a
    self-contained engine for the POSIX-ish subset those filters need:
    literals, [.], character classes with ranges and negation, the
    shorthand classes [\d \w \s] (and negations), grouping, alternation,
    the quantifiers [* + ? {m} {m,} {m,n}], and the anchors [^] / [$]. *)

type node =
  | Empty                                  (** matches the empty string *)
  | Char of char                           (** a literal character *)
  | Any                                    (** [.] — any single character *)
  | Class of class_spec                    (** [\[...\]] *)
  | Seq of node list                       (** concatenation *)
  | Alt of node list                       (** alternation *)
  | Repeat of node * int * int option      (** [{m,n}]; [None] = unbounded *)
  | Bol                                    (** [^] anchor *)
  | Eol                                    (** [$] anchor *)

and class_spec = { negated : bool; ranges : (char * char) list }

val parse : string -> (node, string) result
(** [parse pattern] returns the AST or a human-readable error naming the
    offending position. *)

val parse_exn : string -> node
(** Like {!parse} but raises [Invalid_argument] on a malformed pattern. *)

val class_mem : class_spec -> char -> bool
(** Does [c] belong to the class? *)

val pp : Format.formatter -> node -> unit
(** Debug printer (canonical, not necessarily the original pattern). *)
