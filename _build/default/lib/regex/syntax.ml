type node =
  | Empty
  | Char of char
  | Any
  | Class of class_spec
  | Seq of node list
  | Alt of node list
  | Repeat of node * int * int option
  | Bol
  | Eol

and class_spec = { negated : bool; ranges : (char * char) list }

exception Parse_error of int * string

let fail pos msg = raise (Parse_error (pos, msg))

(* Shorthand classes. *)
let digit_ranges = [ ('0', '9') ]
let word_ranges = [ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ]
let space_ranges = [ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r'); ('\011', '\012') ]

let class_mem { negated; ranges } c =
  let inside = List.exists (fun (lo, hi) -> lo <= c && c <= hi) ranges in
  if negated then not inside else inside

type state = { pattern : string; mutable pos : int }

let peek st = if st.pos < String.length st.pattern then Some st.pattern.[st.pos] else None
let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | _ -> fail st.pos (Printf.sprintf "expected '%c'" c)

let escaped_node st =
  match peek st with
  | None -> fail st.pos "dangling backslash"
  | Some c ->
    advance st;
    (match c with
     | 'd' -> Class { negated = false; ranges = digit_ranges }
     | 'D' -> Class { negated = true; ranges = digit_ranges }
     | 'w' -> Class { negated = false; ranges = word_ranges }
     | 'W' -> Class { negated = true; ranges = word_ranges }
     | 's' -> Class { negated = false; ranges = space_ranges }
     | 'S' -> Class { negated = true; ranges = space_ranges }
     | 'n' -> Char '\n'
     | 't' -> Char '\t'
     | 'r' -> Char '\r'
     | '0' -> Char '\000'
     | c -> Char c)

let parse_class st =
  (* st.pos is just past '['. *)
  let negated = peek st = Some '^' in
  if negated then advance st;
  let ranges = ref [] in
  let add lo hi = ranges := (lo, hi) :: !ranges in
  let escaped_class_char () =
    match peek st with
    | None -> fail st.pos "dangling backslash in class"
    | Some 'n' -> advance st; '\n'
    | Some 't' -> advance st; '\t'
    | Some 'r' -> advance st; '\r'
    | Some c -> advance st; c
  in
  let rec members first =
    match peek st with
    | None -> fail st.pos "unterminated character class"
    | Some ']' when not first -> advance st
    | Some c ->
      let c =
        if c = '\\' then (advance st; escaped_class_char ())
        else (advance st; c)
      in
      (match peek st with
       | Some '-' when st.pos + 1 < String.length st.pattern && st.pattern.[st.pos + 1] <> ']' ->
         advance st;
         let hi =
           match peek st with
           | Some '\\' -> advance st; escaped_class_char ()
           | Some h -> advance st; h
           | None -> fail st.pos "unterminated range"
         in
         if hi < c then fail st.pos "inverted range in character class";
         add c hi
       | _ -> add c c);
      members false
  in
  members true;
  Class { negated; ranges = List.rev !ranges }

let parse_int st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when c >= '0' && c <= '9' -> advance st; go ()
    | _ -> ()
  in
  go ();
  if st.pos = start then fail st.pos "expected integer"
  else int_of_string (String.sub st.pattern start (st.pos - start))

let parse_braces st =
  (* st.pos is just past '{'. *)
  let lo = parse_int st in
  match peek st with
  | Some '}' -> advance st; (lo, Some lo)
  | Some ',' ->
    advance st;
    (match peek st with
     | Some '}' -> advance st; (lo, None)
     | _ ->
       let hi = parse_int st in
       if hi < lo then fail st.pos "inverted {m,n} bounds";
       expect st '}';
       (lo, Some hi))
  | _ -> fail st.pos "malformed {m,n}"

let rec parse_alt st =
  let first = parse_seq st in
  let rec go acc =
    match peek st with
    | Some '|' -> advance st; go (parse_seq st :: acc)
    | _ -> List.rev acc
  in
  match go [ first ] with [ single ] -> single | branches -> Alt branches

and parse_seq st =
  let rec go acc =
    match peek st with
    | None | Some ')' | Some '|' ->
      (match List.rev acc with [] -> Empty | [ single ] -> single | nodes -> Seq nodes)
    | Some _ -> go (parse_postfix st :: acc)
  in
  go []

and parse_postfix st =
  let atom = parse_atom st in
  let rec apply node =
    match peek st with
    | Some '*' -> advance st; apply (Repeat (node, 0, None))
    | Some '+' -> advance st; apply (Repeat (node, 1, None))
    | Some '?' -> advance st; apply (Repeat (node, 0, Some 1))
    | Some '{' ->
      advance st;
      let lo, hi = parse_braces st in
      apply (Repeat (node, lo, hi))
    | _ -> node
  in
  apply atom

and parse_atom st =
  match peek st with
  | None -> fail st.pos "expected atom"
  | Some '(' ->
    advance st;
    let inner = parse_alt st in
    expect st ')';
    inner
  | Some '[' -> advance st; parse_class st
  | Some '.' -> advance st; Any
  | Some '^' -> advance st; Bol
  | Some '$' -> advance st; Eol
  | Some '\\' -> advance st; escaped_node st
  | Some ('*' | '+' | '?') -> fail st.pos "quantifier without operand"
  | Some ')' -> fail st.pos "unmatched ')'"
  | Some c -> advance st; Char c

let parse pattern =
  let st = { pattern; pos = 0 } in
  try
    let node = parse_alt st in
    if st.pos <> String.length pattern then
      Error (Printf.sprintf "trailing input at position %d" st.pos)
    else Ok node
  with Parse_error (pos, msg) ->
    Error (Printf.sprintf "parse error at position %d: %s" pos msg)

let parse_exn pattern =
  match parse pattern with
  | Ok node -> node
  | Error msg -> invalid_arg ("Regex.Syntax.parse_exn: " ^ msg)

let rec pp ppf = function
  | Empty -> Format.fprintf ppf "Empty"
  | Char c -> Format.fprintf ppf "Char %C" c
  | Any -> Format.fprintf ppf "Any"
  | Class { negated; ranges } ->
    Format.fprintf ppf "Class{neg=%b;[%s]}" negated
      (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%C-%C" a b) ranges))
  | Seq nodes ->
    Format.fprintf ppf "Seq(%a)" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp) nodes
  | Alt nodes ->
    Format.fprintf ppf "Alt(%a)" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ") pp) nodes
  | Repeat (n, lo, hi) ->
    Format.fprintf ppf "Repeat(%a,%d,%s)" pp n lo
      (match hi with None -> "inf" | Some h -> string_of_int h)
  | Bol -> Format.fprintf ppf "Bol"
  | Eol -> Format.fprintf ppf "Eol"
