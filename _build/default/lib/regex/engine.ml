type t = { source : string; node : Syntax.node }

let compile source =
  match Syntax.parse source with
  | Ok node -> Ok { source; node }
  | Error msg -> Error msg

let compile_exn source =
  match compile source with
  | Ok t -> t
  | Error msg -> invalid_arg ("Regex.Engine.compile_exn: " ^ msg)

let pattern t = t.source

(* Depth-first matcher in CPS: [go node pos k] tries to match [node]
   starting at [pos] and calls the continuation [k] with every candidate
   end position until [k] returns [true]. *)
let run node s start ~k =
  let len = String.length s in
  let rec go node pos k =
    match (node : Syntax.node) with
    | Syntax.Empty -> k pos
    | Syntax.Char c -> pos < len && s.[pos] = c && k (pos + 1)
    | Syntax.Any -> pos < len && k (pos + 1)
    | Syntax.Class spec -> pos < len && Syntax.class_mem spec s.[pos] && k (pos + 1)
    | Syntax.Bol -> pos = 0 && k pos
    | Syntax.Eol -> pos = len && k pos
    | Syntax.Seq nodes ->
      let rec seq nodes pos =
        match nodes with
        | [] -> k pos
        | n :: rest -> go n pos (fun pos' -> seq rest pos')
      in
      seq nodes pos
    | Syntax.Alt branches -> List.exists (fun b -> go b pos k) branches
    | Syntax.Repeat (inner, lo, hi) ->
      (* Greedy: consume as many repetitions as allowed, backtracking via
         the continuation.  [count] repetitions matched so far. *)
      let rec rep count pos =
        let may_stop = count >= lo in
        let may_continue = match hi with None -> true | Some h -> count < h in
        let try_more () =
          may_continue
          && go inner pos (fun pos' ->
                 (* Reject zero-width progress to avoid infinite loops on
                    patterns like [()* ] or [(a?)*]. *)
                 pos' > pos && rep (count + 1) pos')
        in
        try_more () || (may_stop && k pos)
      in
      (* A zero-width body can still satisfy [lo > 0] (e.g. [(^)+]): allow
         one zero-width match to count for all required repetitions. *)
      if lo > 0 && go inner pos (fun pos' -> pos' = pos && k pos) then true
      else rep 0 pos
  in
  go node start k

let search t s =
  let len = String.length s in
  let rec at pos = run t.node s pos ~k:(fun _ -> true) || (pos < len && at (pos + 1)) in
  at 0

let matches t s =
  let len = String.length s in
  run t.node s 0 ~k:(fun pos -> pos = len)

let find t s =
  let len = String.length s in
  let rec at pos =
    if pos > len then None
    else begin
      let best = ref None in
      let _found =
        run t.node s pos ~k:(fun stop ->
            (match !best with
             | Some b when b >= stop -> ()
             | _ -> best := Some stop);
            false (* keep exploring to find the longest match here *))
      in
      match !best with
      | Some stop -> Some (pos, stop)
      | None -> at (pos + 1)
    end
  in
  at 0
