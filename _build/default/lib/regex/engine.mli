(** Backtracking matcher over {!Syntax} ASTs.

    Patterns in IOCov filters are short (mount-point prefixes such as
    ["^/mnt/test(/|$)"]), so a depth-first backtracking matcher is the
    right trade-off: simple, correct, and fast on realistic inputs. *)

type t
(** A compiled pattern. *)

val compile : string -> (t, string) result
(** Compile a pattern string; [Error] carries the parse diagnostic. *)

val compile_exn : string -> t
(** Like {!compile} but raises [Invalid_argument] on a malformed pattern. *)

val pattern : t -> string
(** The source pattern text. *)

val search : t -> string -> bool
(** [search t s] is [true] iff the pattern matches {e somewhere} in [s]
    (leftmost search; [^]/[$] anchor to the whole string's ends). *)

val matches : t -> string -> bool
(** [matches t s] is [true] iff the pattern matches the {e whole} of [s]
    (as if wrapped in [^(...)$]). *)

val find : t -> string -> (int * int) option
(** [find t s] is the leftmost match as a [(start, stop)] half-open span,
    preferring the longest match at the leftmost start. *)
