(** One record of the Section 2 bug study.

    The paper analyzed the latest 100 Git commits of 2022 for each of
    Ext4 and BtrFS, identified 70 bug fixes (51 + 19), ran xfstests under
    Gcov, and recorded per bug: whether the buggy code's lines, function,
    and branches were covered; whether the suite detected the bug; and
    whether specific inputs (an {e input bug}) or effects on the syscall
    return (an {e output bug}) were needed to trigger it. *)

type fs = Ext4 | Btrfs

val fs_name : fs -> string

type t = {
  id : string;           (** stable identifier, e.g. ["ext4-2022-017"] *)
  fs : fs;
  title : string;        (** commit-subject-style summary *)
  input_bug : bool;      (** needs specific syscall inputs to trigger *)
  output_bug : bool;     (** lives on an exit path / affects the return *)
  func_covered : bool;   (** xfstests covered the containing function *)
  line_covered : bool;   (** xfstests covered the buggy lines *)
  branch_covered : bool; (** xfstests covered the buggy branches *)
  detected : bool;       (** xfstests actually exposed the bug *)
  trigger : Iocov_syscall.Model.base list;
      (** syscalls whose inputs/outputs reach the bug *)
  boundary : bool;       (** trigger involves a boundary / corner value *)
  error_code : Iocov_syscall.Errno.t option;
      (** the error path involved, for output bugs *)
  fault : Iocov_vfs.Fault.t option;
      (** the injectable archetype reproducing this bug's shape, when the
          modeled file system exposes one *)
}

val is_covered_but_missed : t -> bool
(** Line-covered yet undetected — the paper's headline 53% population. *)

val classification : t -> string
(** ["input"], ["output"], ["both"], or ["neither"]. *)

val valid : t -> bool
(** Structural sanity: branch coverage implies line coverage implies
    function coverage, and a detected bug must have been executed
    (function-covered). *)
