open Iocov_syscall
module Fault = Iocov_vfs.Fault

(* Coverage tiers.  Branch coverage implies line coverage implies function
   coverage, matching how Gcov reports nest. *)
type cov = Uncovered | Func_only | Line | Branch

let mk ~n ~fs ~title ~cls ~cov ?(detected = false) ?(boundary = false) ?errno ?fault trigger =
  let input_bug, output_bug =
    match cls with
    | `Input -> (true, false)
    | `Output -> (false, true)
    | `Both -> (true, true)
    | `Neither -> (false, false)
  in
  let func_covered, line_covered, branch_covered =
    match cov with
    | Uncovered -> (false, false, false)
    | Func_only -> (true, false, false)
    | Line -> (true, true, false)
    | Branch -> (true, true, true)
  in
  {
    Bug.id =
      Printf.sprintf "%s-2022-%03d" (String.lowercase_ascii (Bug.fs_name fs)) n;
    fs;
    title;
    input_bug;
    output_bug;
    func_covered;
    line_covered;
    branch_covered;
    detected;
    trigger;
    boundary;
    error_code = errno;
    fault;
  }

let e = Bug.Ext4
let b = Bug.Btrfs

(* --- detected by xfstests (8): fully covered, caught by the suite --- *)
let detected_bugs =
  [ mk ~n:1 ~fs:e ~title:"ext4: fix race when reusing a recently freed extent block"
      ~cls:`Both ~cov:Branch ~detected:true [ Model.Write; Model.Read ];
    mk ~n:2 ~fs:e ~title:"ext4: fix corruption when online resizing a small bigalloc fs"
      ~cls:`Both ~cov:Branch ~detected:true [ Model.Write ];
    mk ~n:3 ~fs:e ~title:"ext4: fix dir corruption after converting inline dir to block"
      ~cls:`Both ~cov:Branch ~detected:true [ Model.Mkdir; Model.Open ];
    mk ~n:4 ~fs:e ~title:"ext4: fix lost error from journal commit during sync"
      ~cls:`Output ~cov:Branch ~detected:true ~errno:Errno.EIO [ Model.Close ];
    mk ~n:5 ~fs:e ~title:"ext4: fix null pointer dereference in fast-commit replay"
      ~cls:`Neither ~cov:Branch ~detected:true [ Model.Write ];
    mk ~n:6 ~fs:e ~title:"ext4: fix extent status tree shrinker accounting"
      ~cls:`Both ~cov:Branch ~detected:true [ Model.Read ];
    mk ~n:1 ~fs:b ~title:"btrfs: fix deadlock between concurrent dio writes and fsync"
      ~cls:`Both ~cov:Branch ~detected:true [ Model.Write; Model.Close ];
    mk ~n:2 ~fs:b ~title:"btrfs: fix space cache corruption after full balance"
      ~cls:`Both ~cov:Branch ~detected:true [ Model.Write ] ]

(* --- covered through branches, still missed (20) --- *)
let branch_covered_missed =
  [ (* Ext4: 15 *)
    mk ~n:10 ~fs:e ~title:"ext4: fix use-after-free in ext4_xattr_set_entry"
      ~cls:`Both ~cov:Branch ~boundary:true ~errno:Errno.ENOSPC
      ~fault:Fault.Xattr_ibody_overflow [ Model.Setxattr ]
      (* the paper's Figure 1: only the maximum lsetxattr size overflows
         min_offs, so full code coverage still misses it *);
    mk ~n:11 ~fs:e ~title:"ext4: fix potential out of bound read in ext4_fc_replay_scan"
      ~cls:`Input ~cov:Branch ~boundary:true [ Model.Write ];
    mk ~n:12 ~fs:e ~title:"ext4: continue to expand file system when the target size doesn't reach"
      ~cls:`Input ~cov:Branch ~boundary:true [ Model.Truncate; Model.Write ];
    mk ~n:13 ~fs:e ~title:"ext4: fix error code return to user-space in ext4_get_branch"
      ~cls:`Output ~cov:Branch ~errno:Errno.EIO [ Model.Read ];
    mk ~n:14 ~fs:e ~title:"ext4: fix EFBIG check off-by-one at the max file size boundary"
      ~cls:`Both ~cov:Branch ~boundary:true ~errno:Errno.EFBIG
      ~fault:Fault.Truncate_efbig_unchecked [ Model.Truncate ];
    mk ~n:15 ~fs:e ~title:"ext4: fix offset update for zero-length dio write"
      ~cls:`Both ~cov:Branch ~boundary:true
      ~fault:Fault.Write_zero_advances_offset [ Model.Write; Model.Lseek ];
    mk ~n:16 ~fs:e ~title:"ext4: fix mount failure handling with quota feature and errors=panic"
      ~cls:`Neither ~cov:Branch [ ];
    mk ~n:17 ~fs:e ~title:"ext4: fix SEEK_HOLE answer past EOF for files ending in a hole"
      ~cls:`Both ~cov:Branch ~boundary:true ~fault:Fault.Seek_hole_off_by_one
      [ Model.Lseek ];
    mk ~n:18 ~fs:e ~title:"ext4: fix setuid handling when chmod races with open"
      ~cls:`Input ~cov:Branch ~fault:Fault.Chmod_suid_kept [ Model.Chmod ];
    mk ~n:19 ~fs:e ~title:"ext4: fix warning on reading an empty xattr value"
      ~cls:`Both ~cov:Branch ~boundary:true ~errno:Errno.ENODATA
      ~fault:Fault.Getxattr_empty_enodata [ Model.Getxattr ];
    mk ~n:20 ~fs:e ~title:"ext4: fix punch hole beyond i_size leaving stale extents"
      ~cls:`Input ~cov:Branch ~boundary:true [ Model.Truncate ];
    mk ~n:21 ~fs:e ~title:"ext4: fix overflow when inode timestamp extends past 2038"
      ~cls:`Input ~cov:Branch ~boundary:true [ Model.Chmod ];
    mk ~n:22 ~fs:e ~title:"ext4: fix orphan cleanup loop with an empty orphan list block"
      ~cls:`Neither ~cov:Branch [ ];
    mk ~n:23 ~fs:e ~title:"ext4: fix ENOSPC accounting for delayed allocation at quota edge"
      ~cls:`Output ~cov:Branch ~errno:Errno.EDQUOT [ Model.Write ];
    mk ~n:24 ~fs:e ~title:"ext4: fix read beyond EOF when lseek lands exactly on i_size"
      ~cls:`Both ~cov:Branch ~boundary:true [ Model.Lseek; Model.Read ];
    (* BtrFS: 5 *)
    mk ~n:10 ~fs:b ~title:"btrfs: fix NOWAIT buffered write returning -ENOSPC"
      ~cls:`Both ~cov:Branch ~errno:Errno.ENOSPC ~fault:Fault.Nowait_write_enospc
      [ Model.Write ];
    mk ~n:11 ~fs:b ~title:"btrfs: fix lost file data after fsync of prealloc extent past EOF"
      ~cls:`Both ~cov:Branch ~boundary:true ~fault:Fault.Fsync_skips_data
      [ Model.Write; Model.Close ];
    mk ~n:12 ~fs:b ~title:"btrfs: fix wrong error return from incomplete readahead"
      ~cls:`Output ~cov:Branch ~errno:Errno.EIO [ Model.Read ];
    mk ~n:13 ~fs:b ~title:"btrfs: fix send failing on a file cloned to exactly the max extent"
      ~cls:`Neither ~cov:Branch ~boundary:true [ ];
    mk ~n:14 ~fs:b ~title:"btrfs: fix assertion when compressed write spans a zone boundary"
      ~cls:`Neither ~cov:Branch ~boundary:true [ ] ]

(* --- lines (but not branches) covered, missed (17) --- *)
let line_covered_missed =
  [ (* Ext4: 12 *)
    mk ~n:30 ~fs:e ~title:"ext4: fix creat mode bits dropped under a racing umask update"
      ~cls:`Input ~cov:Line ~fault:Fault.Creat_mode_ignored [ Model.Open ];
    mk ~n:31 ~fs:e ~title:"ext4: fix sticky bit loss when mkdir inherits from setgid parent"
      ~cls:`Input ~cov:Line ~fault:Fault.Mkdir_sticky_lost [ Model.Mkdir ];
    mk ~n:32 ~fs:e ~title:"ext4: fix EOVERFLOW opening large files without O_LARGEFILE on 32-bit"
      ~cls:`Both ~cov:Line ~boundary:true ~errno:Errno.EOVERFLOW
      ~fault:Fault.Largefile_eoverflow [ Model.Open ];
    mk ~n:33 ~fs:e ~title:"ext4: fix short write retry loop forgetting the progress count"
      ~cls:`Both ~cov:Line ~errno:Errno.ENOSPC ~fault:Fault.Enospc_swallowed
      [ Model.Write ];
    mk ~n:34 ~fs:e ~title:"ext4: fix i_disksize update when writing into a hole at 4GiB"
      ~cls:`Input ~cov:Line ~boundary:true [ Model.Write ];
    mk ~n:35 ~fs:e ~title:"ext4: fix fast-commit replay of multi-block xattr deletion"
      ~cls:`Input ~cov:Line [ Model.Setxattr ];
    mk ~n:36 ~fs:e ~title:"ext4: fix error path leak when dir index split hits ENOSPC"
      ~cls:`Output ~cov:Line ~errno:Errno.ENOSPC [ Model.Mkdir ];
    mk ~n:37 ~fs:e ~title:"ext4: fix stale error return cached from a previous aborted open"
      ~cls:`Output ~cov:Line ~errno:Errno.EIO [ Model.Open ];
    mk ~n:38 ~fs:e ~title:"ext4: fix dirent checksum verification on 1k block directories"
      ~cls:`Neither ~cov:Line [ ];
    mk ~n:39 ~fs:e ~title:"ext4: fix group descriptor refresh after journaled metadata replay"
      ~cls:`Neither ~cov:Line [ ];
    mk ~n:40 ~fs:e ~title:"ext4: fix inline data state left behind by failed truncate"
      ~cls:`Both ~cov:Line ~boundary:true [ Model.Truncate ];
    mk ~n:41 ~fs:e ~title:"ext4: fix symlink ELOOP detection when nesting equals the limit"
      ~cls:`Both ~cov:Line ~boundary:true ~errno:Errno.ELOOP [ Model.Open ];
    (* BtrFS: 5 *)
    mk ~n:20 ~fs:b ~title:"btrfs: fix relocation failure when a data extent crosses 128MiB"
      ~cls:`Both ~cov:Line ~boundary:true ~errno:Errno.EIO [ Model.Write ];
    mk ~n:21 ~fs:b ~title:"btrfs: fix qgroup accounting on buffered write into prealloc range"
      ~cls:`Both ~cov:Line ~errno:Errno.EDQUOT [ Model.Write ];
    mk ~n:22 ~fs:b ~title:"btrfs: fix missing -EDQUOT when rewriting shared compressed data"
      ~cls:`Both ~cov:Line ~errno:Errno.EDQUOT [ Model.Write ];
    mk ~n:23 ~fs:b ~title:"btrfs: fix log tree replay of a rename over an orphan inode"
      ~cls:`Neither ~cov:Line [ ];
    mk ~n:24 ~fs:b ~title:"btrfs: fix readdir position after seeking a just-unlinked entry"
      ~cls:`Neither ~cov:Line [ Model.Lseek ] ]

(* --- function covered but the buggy lines never ran, missed (6) --- *)
let func_covered_missed =
  [ mk ~n:50 ~fs:e ~title:"ext4: fix handling of xattr block reference count overflow"
      ~cls:`Input ~cov:Func_only ~boundary:true [ Model.Setxattr ];
    mk ~n:51 ~fs:e ~title:"ext4: fix write retry after transient ENOMEM in writeback"
      ~cls:`Both ~cov:Func_only ~errno:Errno.ENOMEM [ Model.Write ];
    mk ~n:52 ~fs:e ~title:"ext4: fix truncation of encrypted names at NAME_MAX"
      ~cls:`Input ~cov:Func_only ~boundary:true [ Model.Open ];
    mk ~n:53 ~fs:e ~title:"ext4: fix double free on mount option parse failure"
      ~cls:`Neither ~cov:Func_only [ ];
    mk ~n:30 ~fs:b ~title:"btrfs: fix fsync of sparse file losing the final hole extent"
      ~cls:`Both ~cov:Func_only ~boundary:true [ Model.Write; Model.Truncate ];
    mk ~n:31 ~fs:b ~title:"btrfs: fix -EAGAIN loop for nowait dio crossing extent boundaries"
      ~cls:`Both ~cov:Func_only ~errno:Errno.EAGAIN [ Model.Write ] ]

(* --- entirely uncovered by xfstests (19) --- *)
let uncovered_missed =
  [ (* Ext4: 14 *)
    mk ~n:60 ~fs:e ~title:"ext4: fix fallocate beyond max length returning wrong error"
      ~cls:`Both ~cov:Uncovered ~boundary:true ~errno:Errno.EFBIG [ Model.Truncate ];
    mk ~n:61 ~fs:e ~title:"ext4: fix lseek SEEK_DATA on a file with only an inline tail"
      ~cls:`Both ~cov:Uncovered ~boundary:true ~errno:Errno.ENXIO [ Model.Lseek ];
    mk ~n:62 ~fs:e ~title:"ext4: fix O_TMPFILE inode leaking into the orphan list on failure"
      ~cls:`Input ~cov:Uncovered [ Model.Open ];
    mk ~n:63 ~fs:e ~title:"ext4: fix getxattr buffer length check with a zero-size buffer"
      ~cls:`Both ~cov:Uncovered ~boundary:true ~errno:Errno.ERANGE [ Model.Getxattr ];
    mk ~n:64 ~fs:e ~title:"ext4: fix chmod of an opened-but-unlinked inode touching freed memory"
      ~cls:`Input ~cov:Uncovered [ Model.Chmod; Model.Close ];
    mk ~n:65 ~fs:e ~title:"ext4: fix dax write at exactly the 16TiB file size cap"
      ~cls:`Both ~cov:Uncovered ~boundary:true ~errno:Errno.EFBIG [ Model.Write ];
    mk ~n:66 ~fs:e ~title:"ext4: fix fast-commit with a directory renamed onto its child"
      ~cls:`Input ~cov:Uncovered [ Model.Mkdir ];
    mk ~n:67 ~fs:e ~title:"ext4: fix EINTR leak from dio when a signal interrupts the final page"
      ~cls:`Both ~cov:Uncovered ~errno:Errno.EINTR [ Model.Write ];
    mk ~n:68 ~fs:e ~title:"ext4: fix bigalloc cluster accounting when write size equals cluster"
      ~cls:`Both ~cov:Uncovered ~boundary:true [ Model.Write ];
    mk ~n:69 ~fs:e ~title:"ext4: fix verity enable racing with a concurrent truncate"
      ~cls:`Input ~cov:Uncovered [ Model.Truncate ];
    mk ~n:70 ~fs:e ~title:"ext4: fix wrong errno when opening a corrupted quota inode"
      ~cls:`Output ~cov:Uncovered ~errno:Errno.EIO [ Model.Open ];
    mk ~n:71 ~fs:e ~title:"ext4: fix casefold lookup of names differing only at byte 255"
      ~cls:`Both ~cov:Uncovered ~boundary:true [ Model.Open ];
    mk ~n:72 ~fs:e ~title:"ext4: fix journal replay after power cut during lazy inode-table init"
      ~cls:`Neither ~cov:Uncovered [ ];
    mk ~n:73 ~fs:e ~title:"ext4: fix mballoc preallocation discard on read-only remount"
      ~cls:`Neither ~cov:Uncovered [ ];
    (* BtrFS: 5 *)
    mk ~n:40 ~fs:b ~title:"btrfs: fix reflink of the final partial block of a file"
      ~cls:`Both ~cov:Uncovered ~boundary:true [ Model.Write ];
    mk ~n:41 ~fs:b ~title:"btrfs: fix zoned device write pointer mismatch after crash"
      ~cls:`Input ~cov:Uncovered [ Model.Write ];
    mk ~n:42 ~fs:b ~title:"btrfs: fix subvolume deletion returning before discard completes"
      ~cls:`Both ~cov:Uncovered ~errno:Errno.EBUSY [ Model.Close ];
    mk ~n:43 ~fs:b ~title:"btrfs: fix scrub of a raid56 stripe containing an unaligned tail"
      ~cls:`Both ~cov:Uncovered ~boundary:true [ Model.Write ];
    mk ~n:44 ~fs:b ~title:"btrfs: fix device removal racing with the allocation of a new chunk"
      ~cls:`Neither ~cov:Uncovered [ ] ]

let all =
  detected_bugs @ branch_covered_missed @ line_covered_missed @ func_covered_missed
  @ uncovered_missed

let by_fs fs = List.filter (fun (b : Bug.t) -> b.Bug.fs = fs) all
let find id = List.find_opt (fun (b : Bug.t) -> b.Bug.id = id) all
let injectable = List.filter (fun (b : Bug.t) -> b.Bug.fault <> None) all
