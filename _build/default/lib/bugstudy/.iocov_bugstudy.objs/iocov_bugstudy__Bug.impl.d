lib/bugstudy/bug.ml: Iocov_syscall Iocov_vfs
