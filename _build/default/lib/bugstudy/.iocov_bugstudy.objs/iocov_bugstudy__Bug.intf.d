lib/bugstudy/bug.mli: Iocov_syscall Iocov_vfs
