lib/bugstudy/differential.mli: Iocov_vfs
