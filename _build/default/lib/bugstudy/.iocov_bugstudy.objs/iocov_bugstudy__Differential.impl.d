lib/bugstudy/differential.ml: Buffer Config Errno Fault Fs Iocov_syscall Iocov_util Iocov_vfs List Model Open_flags Printf String Whence
