lib/bugstudy/dataset.ml: Bug Errno Iocov_syscall Iocov_vfs List Model Printf String
