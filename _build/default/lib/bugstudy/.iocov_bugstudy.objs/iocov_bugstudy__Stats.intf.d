lib/bugstudy/stats.mli: Bug Iocov_syscall
