lib/bugstudy/dataset.mli: Bug
