lib/bugstudy/stats.ml: Bug Dataset Hashtbl Iocov_syscall Iocov_util List Printf
