(** The IOCov-guided differential tester (the paper's Section 6: "We are
    currently developing a differential-testing-based file system tester
    utilizing IOCov").

    Two file systems run the same probes: a reference and a victim with
    one injected {!Iocov_vfs.Fault.t}.  A fault is {e detected} when some
    probe observes different behaviour on the two.  Two probe-generation
    strategies are compared:

    - {!Code_coverage_style} exercises the same code paths a
      line-coverage-oriented suite does — common flags, mid-range sizes,
      successful paths.  It reaches high code coverage of the modeled
      file system yet misses input/output-boundary bugs.
    - {!Iocov_guided} drives exactly the partitions IOCov reports as
      untested or boundary: size 0 and maximum sizes, every flag
      (including the never-tested [O_LARGEFILE]), every [whence], error
      provocations, and crash probes.

    This is the causal demonstration behind Figure 1's argument: the
    same bug, invisible to code-coverage-satisfying tests, falls to
    input/output-coverage-guided ones. *)

type strategy = Code_coverage_style | Iocov_guided

val strategy_name : strategy -> string

type report = {
  fault : Iocov_vfs.Fault.t;
  strategy : strategy;
  detected : bool;
  first_detection : int option;  (** index of the first revealing probe *)
  probes_run : int;
}

val hunt :
  ?seed:int -> ?budget:int -> strategy:strategy -> Iocov_vfs.Fault.t -> report
(** Hunt one fault with one strategy.  [budget] caps the number of
    probes (default 64). *)

val campaign : ?seed:int -> ?budget:int -> unit -> report list
(** Every injectable fault crossed with both strategies. *)

val render : report list -> string
(** Fault-by-strategy detection matrix. *)

val detection_rate : report list -> strategy -> float
(** Fraction of faults the strategy detected, in [0, 1]. *)
