(** Section 2 statistics, recomputed from the dataset. *)

type t = {
  total : int;
  ext4 : int;
  btrfs : int;
  detected : int;
  input_bugs : int;
  output_bugs : int;
  input_or_output : int;
  both_input_output : int;
  line_covered_missed : int;
  func_covered_missed : int;
  branch_covered_missed : int;
  covered_missed_input_triggerable : int;
      (** of the line-covered-but-missed bugs, how many are input bugs *)
  boundary_triggered : int;
  error_path : int;  (** bugs with a specific error code involved *)
}

val compute : Bug.t list -> t
val of_dataset : unit -> t
(** [compute Dataset.all]. *)

val pct : int -> int -> float
(** Percentage helper, exposed so callers print the same rounding. *)

val render : t -> string
(** The E1 table: every Section 2 number, paper value vs recomputed. *)

val trigger_frequency : Bug.t list -> (Iocov_syscall.Model.base * int) list
(** How often each base syscall appears as a bug trigger — the evidence
    behind choosing the 27 modeled syscalls. *)
