(** The 70-bug dataset (51 Ext4 + 19 BtrFS, 2022).

    The paper promises to release its bug-study dataset; it is not yet
    public, so this module encodes a {e modeled} dataset: 70 records whose
    titles follow the real 2022 Ext4/BtrFS bug-fix themes (including the
    six commits the paper cites explicitly) and whose flag fields
    reproduce {e every aggregate statistic Section 2 reports} exactly:

    - 51 Ext4 + 19 BtrFS bug fixes;
    - 37/70 (53%) line-covered by xfstests yet missed, 43/70 (61%) for
      functions, 20/70 (29%) for branches;
    - 50/70 (71%) input bugs, 41/70 (59%) output bugs, 57/70 (81%)
      input- or output-related;
    - 24/37 (65%) of the covered-but-missed bugs triggerable by specific
      syscall arguments.

    [Stats] recomputes each percentage from the records, and the test
    suite asserts them, so the dataset cannot drift from the paper. *)

val all : Bug.t list
(** The 70 records, Ext4 first. *)

val by_fs : Bug.fs -> Bug.t list

val find : string -> Bug.t option
(** Lookup by id. *)

val injectable : Bug.t list
(** Records whose shape is reproduced by an injectable
    {!Iocov_vfs.Fault.t} in the modeled file system. *)
