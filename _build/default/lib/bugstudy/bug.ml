type fs = Ext4 | Btrfs

let fs_name = function Ext4 -> "Ext4" | Btrfs -> "BtrFS"

type t = {
  id : string;
  fs : fs;
  title : string;
  input_bug : bool;
  output_bug : bool;
  func_covered : bool;
  line_covered : bool;
  branch_covered : bool;
  detected : bool;
  trigger : Iocov_syscall.Model.base list;
  boundary : bool;
  error_code : Iocov_syscall.Errno.t option;
  fault : Iocov_vfs.Fault.t option;
}

let is_covered_but_missed t = t.line_covered && not t.detected

let classification t =
  match (t.input_bug, t.output_bug) with
  | true, true -> "both"
  | true, false -> "input"
  | false, true -> "output"
  | false, false -> "neither"

let valid t =
  (if t.branch_covered then t.line_covered else true)
  && (if t.line_covered then t.func_covered else true)
  && if t.detected then t.func_covered else true
