open Iocov_syscall
open Iocov_vfs
module Prng = Iocov_util.Prng

type strategy = Code_coverage_style | Iocov_guided

let strategy_name = function
  | Code_coverage_style -> "code-coverage-style"
  | Iocov_guided -> "IOCov-guided"

type report = {
  fault : Fault.t;
  strategy : strategy;
  detected : bool;
  first_detection : int option;
  probes_run : int;
}

(* A configuration with reachable limits, shared by reference and victim:
   boundary probes must be able to hit EFBIG/ENOSPC/EOVERFLOW in a few
   operations. *)
let diff_config =
  {
    Config.default with
    Config.total_blocks = 8192;              (* 32 MiB *)
    max_file_size = 8 * 1024 * 1024;         (* EFBIG at 8 MiB *)
    large_file_threshold = 4 * 1024 * 1024;  (* EOVERFLOW at 4 MiB *)
  }

(* A probe drives one file system and distills what it saw into a string;
   equal strings on reference and victim mean the probe saw no difference. *)
type probe = { name : string; run : Fs.t -> string }

let out fs call = Model.outcome_to_string (Fs.exec fs call)

let aux_out fs aux =
  match Fs.exec_aux fs aux with
  | Ok n -> Printf.sprintf "ok:%d" n
  | Error e -> "err:" ^ Errno.to_string e

let with_file fs path f =
  match
    Fs.exec fs
      (Model.open_ ~mode:0o644 ~flags:Open_flags.(of_flags [ O_RDWR; O_CREAT ]) path)
  with
  | Model.Ret fd ->
    let result = f fd in
    ignore (Fs.exec fs (Model.close fd));
    result
  | Model.Err e -> "open-failed:" ^ Errno.to_string e

(* --- IOCov-guided probes: one per untested/boundary partition family --- *)

let guided_probes =
  [ { name = "zero-write-offset";
      run =
        (fun fs ->
          with_file fs "/zw" (fun fd ->
              let w = out fs (Model.write ~fd ~count:0 ()) in
              let pos = out fs (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_CUR) in
              w ^ ";" ^ pos)) };
    { name = "write-size-boundaries";
      run =
        (fun fs ->
          with_file fs "/wb" (fun fd ->
              String.concat ";"
                (List.map
                   (fun size ->
                     out fs (Model.write ~variant:Model.Sys_pwrite64 ~offset:0 ~fd ~count:size ()))
                   [ 0; 1; 4095; 4096; 4097; 1 lsl 20 ]))) };
    { name = "xattr-max-size";
      run =
        (fun fs ->
          (* bind each step: list elements evaluate in unspecified order *)
          let target = Model.Path "/xm" in
          ignore (Fs.exec fs (Model.open_ ~mode:0o644 ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT ]) "/xm"));
          let max = (Fs.config fs).Config.max_xattr_value in
          let set_max = out fs (Model.setxattr ~target ~name:"user.max" ~size:max ()) in
          let set_over = out fs (Model.setxattr ~target ~name:"user.over" ~size:(max + 1) ()) in
          let get_max = out fs (Model.getxattr ~target ~name:"user.max" ~size:(max + 1) ()) in
          String.concat ";" [ set_max; set_over; get_max ]) };
    { name = "xattr-empty-value";
      run =
        (fun fs ->
          let target = Model.Path "/xe" in
          ignore (Fs.exec fs (Model.open_ ~mode:0o644 ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT ]) "/xe"));
          let set = out fs (Model.setxattr ~target ~name:"user.e" ~size:0 ()) in
          let get = out fs (Model.getxattr ~target ~name:"user.e" ~size:16 ()) in
          let query = out fs (Model.getxattr ~target ~name:"user.e" ~size:0 ()) in
          String.concat ";" [ set; get; query ]) };
    { name = "truncate-limit-boundary";
      run =
        (fun fs ->
          let limit = (Fs.config fs).Config.max_file_size in
          ignore (Fs.exec fs (Model.open_ ~mode:0o644 ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT ]) "/tb"));
          let at_limit = out fs (Model.truncate ~target:(Model.Path "/tb") ~length:limit ()) in
          let past_limit = out fs (Model.truncate ~target:(Model.Path "/tb") ~length:(limit + 1) ()) in
          let negative = out fs (Model.truncate ~target:(Model.Path "/tb") ~length:(-1) ()) in
          String.concat ";" [ at_limit; past_limit; negative ]) };
    { name = "seek-hole-boundary";
      run =
        (fun fs ->
          with_file fs "/sh" (fun fd ->
              let w = out fs (Model.write ~variant:Model.Sys_pwrite64 ~offset:0 ~fd ~count:65536 ()) in
              let hole = out fs (Model.lseek ~fd ~offset:65535 ~whence:Whence.SEEK_HOLE) in
              let data = out fs (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_DATA) in
              let past = out fs (Model.lseek ~fd ~offset:65536 ~whence:Whence.SEEK_DATA) in
              String.concat ";" [ w; hole; data; past ])) };
    { name = "largefile-flag";
      run =
        (fun fs ->
          let threshold = (Fs.config fs).Config.large_file_threshold in
          ignore (Fs.exec fs (Model.open_ ~mode:0o644 ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT ]) "/lf"));
          ignore (Fs.exec fs (Model.truncate ~target:(Model.Path "/lf") ~length:threshold ()));
          let plain = out fs (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY ]) "/lf") in
          let largefile =
            out fs (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY; O_LARGEFILE ]) "/lf")
          in
          String.concat ";" [ plain; largefile ]) };
    { name = "nonblock-write";
      run =
        (fun fs ->
          match
            Fs.exec fs
              (Model.open_ ~mode:0o644
                 ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT; O_NONBLOCK ]) "/nb")
          with
          | Model.Ret fd ->
            let w = out fs (Model.write ~fd ~count:4096 ()) in
            ignore (Fs.exec fs (Model.close fd));
            w
          | Model.Err e -> "open-failed:" ^ Errno.to_string e) };
    { name = "non-owner-chmod-suid";
      run =
        (fun fs ->
          ignore (Fs.exec fs (Model.open_ ~mode:0o644 ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT ]) "/suid"));
          Fs.set_credentials fs ~uid:1000 ~gid:1000;
          let r = out fs (Model.chmod ~target:(Model.Path "/suid") ~mode:0o4644 ()) in
          Fs.set_credentials fs ~uid:0 ~gid:0;
          r) };
    { name = "creat-mode-readback";
      run =
        (fun fs ->
          ignore
            (Fs.exec fs
               (Model.open_ ~mode:0o644 ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT ]) "/cm"));
          Fs.set_credentials fs ~uid:1000 ~gid:1000;
          let r = out fs (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY ]) "/cm") in
          Fs.set_credentials fs ~uid:0 ~gid:0;
          r) };
    { name = "sticky-dir-deletion";
      run =
        (fun fs ->
          ignore (Fs.exec fs (Model.mkdir ~mode:0o1777 "/shared"));
          Fs.set_credentials fs ~uid:1001 ~gid:1001;
          ignore
            (Fs.exec fs
               (Model.open_ ~mode:0o666 ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT ])
                  "/shared/victim"));
          Fs.set_credentials fs ~uid:1002 ~gid:1002;
          let r = aux_out fs (Fs.Unlink "/shared/victim") in
          Fs.set_credentials fs ~uid:0 ~gid:0;
          r) };
    { name = "fill-device";
      run =
        (fun fs ->
          let buf = Buffer.create 128 in
          let n = ref 0 in
          let continue = ref true in
          while !continue && !n < 16 do
            incr n;
            let path = Printf.sprintf "/fill%d" !n in
            (match
               Fs.exec fs
                 (Model.open_ ~mode:0o644 ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT ]) path)
             with
             | Model.Ret fd ->
               (match Fs.exec fs (Model.write ~fd ~count:(4 * 1024 * 1024) ()) with
                | Model.Ret k ->
                  Buffer.add_string buf (Printf.sprintf "w%d;" k);
                  if k < 4 * 1024 * 1024 then begin
                    (* short write: the device is full — the next write on
                       this descriptor must report the exhaustion *)
                    Buffer.add_string buf
                      ("then:" ^ out fs (Model.write ~fd ~count:4096 ()) ^ ";");
                    Buffer.add_string buf
                      ("then:" ^ out fs (Model.write ~fd ~count:4096 ()) ^ ";")
                  end
                | Model.Err e ->
                  Buffer.add_string buf ("werr:" ^ Errno.to_string e ^ ";");
                  if e = Errno.ENOSPC then continue := false);
               ignore (Fs.exec fs (Model.close fd))
             | Model.Err e ->
               Buffer.add_string buf ("oerr:" ^ Errno.to_string e ^ ";");
               continue := false)
          done;
          Buffer.contents buf) };
    { name = "fsync-crash-durability";
      run =
        (fun fs ->
          match
            Fs.exec fs
              (Model.open_ ~mode:0o644 ~flags:Open_flags.(of_flags [ O_RDWR; O_CREAT ]) "/dur")
          with
          | Model.Err e -> "open-failed:" ^ Errno.to_string e
          | Model.Ret fd ->
            ignore (Fs.exec fs (Model.write ~fd ~count:8192 ()));
            ignore (Fs.exec_aux fs (Fs.Fsync fd));
            (* make the name durable too, then cut power *)
            (match
               Fs.exec fs (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY; O_DIRECTORY ]) "/")
             with
             | Model.Ret dfd ->
               ignore (Fs.exec_aux fs (Fs.Fsync dfd));
               ignore (Fs.exec fs (Model.close dfd))
             | Model.Err _ -> ());
            ignore (Fs.exec_aux fs Fs.Crash);
            (match (Fs.stat fs "/dur", Fs.checksum fs "/dur") with
             | Ok st, Ok sum -> Printf.sprintf "size:%d;sum:%d" st.Fs.st_size sum
             | _ -> "lost")) } ]

(* --- code-coverage-style probes: common flags, mid-range sizes,
   success paths.  Parameterized by a per-probe seed so reference and
   victim replay the identical sequence. --- *)

let code_style_probe i =
  {
    name = Printf.sprintf "typical-%02d" i;
    run =
      (fun fs ->
        let rng = Prng.create ~seed:(0x5EED + i) in
        let buf = Buffer.create 256 in
        for k = 1 to 12 do
          let path = Printf.sprintf "/t%d_%d" i k in
          (match
             Fs.exec fs
               (Model.open_ ~mode:0o644
                  ~flags:Open_flags.(of_flags [ O_RDWR; O_CREAT; O_TRUNC ]) path)
           with
           | Model.Ret fd ->
             let size = Prng.weighted rng [ (4, 1024); (4, 4096); (2, 65536) ] in
             Buffer.add_string buf (out fs (Model.write ~fd ~count:size ()));
             Buffer.add_string buf (out fs (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_SET));
             Buffer.add_string buf (out fs (Model.read ~fd ~count:size ()));
             Buffer.add_string buf
               (out fs (Model.chmod ~target:(Model.Fd fd) ~mode:0o644 ()));
             Buffer.add_string buf
               (out fs
                  (Model.setxattr ~target:(Model.Fd fd) ~name:"user.t"
                     ~size:(16 + Prng.int rng 240) ()));
             Buffer.add_string buf
               (out fs (Model.getxattr ~target:(Model.Fd fd) ~name:"user.t" ~size:4096 ()));
             Buffer.add_string buf (out fs (Model.close fd))
           | Model.Err e -> Buffer.add_string buf ("oerr:" ^ Errno.to_string e));
          Buffer.add_char buf ';'
        done;
        Buffer.contents buf);
  }

let probes_for strategy ~budget =
  match strategy with
  | Iocov_guided ->
    let base = guided_probes in
    if budget >= List.length base then base
    else List.filteri (fun i _ -> i < budget) base
  | Code_coverage_style -> List.init budget code_style_probe

let hunt ?(seed = 11) ?(budget = 64) ~strategy fault =
  ignore seed;
  let probes = probes_for strategy ~budget in
  let run_pair probe =
    let reference = Fs.create ~config:diff_config () in
    let victim = Fs.create ~config:(Config.with_faults [ fault ] diff_config) () in
    let obs_ref = probe.run reference in
    let obs_victim = probe.run victim in
    obs_ref <> obs_victim
  in
  let rec go i = function
    | [] -> { fault; strategy; detected = false; first_detection = None; probes_run = i }
    | probe :: rest ->
      if run_pair probe then
        { fault; strategy; detected = true; first_detection = Some i; probes_run = i + 1 }
      else go (i + 1) rest
  in
  go 0 probes

let campaign ?seed ?budget () =
  List.concat_map
    (fun fault ->
      [ hunt ?seed ?budget ~strategy:Code_coverage_style fault;
        hunt ?seed ?budget ~strategy:Iocov_guided fault ])
    Fault.all

let render reports =
  let cell fault strategy =
    match
      List.find_opt (fun r -> r.fault = fault && r.strategy = strategy) reports
    with
    | Some { detected = true; first_detection = Some i; _ } ->
      Printf.sprintf "detected (probe %d)" i
    | Some { detected = false; probes_run; _ } -> Printf.sprintf "missed (%d probes)" probes_run
    | Some { detected = true; first_detection = None; _ } -> "detected"
    | None -> "-"
  in
  let faults =
    List.sort_uniq Fault.compare (List.map (fun r -> r.fault) reports)
  in
  Iocov_util.Ascii.table
    ~title:"Differential tester: injected fault vs probe strategy"
    ~headers:[ "injected fault"; "code-coverage-style"; "IOCov-guided" ]
    (List.map
       (fun f ->
         [ Fault.to_string f; cell f Code_coverage_style; cell f Iocov_guided ])
       faults)

let detection_rate reports strategy =
  let mine = List.filter (fun r -> r.strategy = strategy) reports in
  match mine with
  | [] -> 0.0
  | _ ->
    float_of_int (List.length (List.filter (fun r -> r.detected) mine))
    /. float_of_int (List.length mine)
