module Ascii = Iocov_util.Ascii
module Model = Iocov_syscall.Model

type t = {
  total : int;
  ext4 : int;
  btrfs : int;
  detected : int;
  input_bugs : int;
  output_bugs : int;
  input_or_output : int;
  both_input_output : int;
  line_covered_missed : int;
  func_covered_missed : int;
  branch_covered_missed : int;
  covered_missed_input_triggerable : int;
  boundary_triggered : int;
  error_path : int;
}

let count p bugs = List.length (List.filter p bugs)

let compute bugs =
  let open Bug in
  {
    total = List.length bugs;
    ext4 = count (fun b -> b.fs = Ext4) bugs;
    btrfs = count (fun b -> b.fs = Btrfs) bugs;
    detected = count (fun b -> b.detected) bugs;
    input_bugs = count (fun b -> b.input_bug) bugs;
    output_bugs = count (fun b -> b.output_bug) bugs;
    input_or_output = count (fun b -> b.input_bug || b.output_bug) bugs;
    both_input_output = count (fun b -> b.input_bug && b.output_bug) bugs;
    line_covered_missed = count (fun b -> b.line_covered && not b.detected) bugs;
    func_covered_missed = count (fun b -> b.func_covered && not b.detected) bugs;
    branch_covered_missed = count (fun b -> b.branch_covered && not b.detected) bugs;
    covered_missed_input_triggerable =
      count (fun b -> b.line_covered && (not b.detected) && b.input_bug) bugs;
    boundary_triggered = count (fun b -> b.boundary) bugs;
    error_path = count (fun b -> b.error_code <> None) bugs;
  }

let of_dataset () = compute Dataset.all

let pct part whole = Iocov_util.Stats.percentage part whole

let render t =
  let row name value paper =
    [ name; value; paper ]
  in
  let fraction part whole = Printf.sprintf "%d/%d (%.0f%%)" part whole (pct part whole) in
  Ascii.table
    ~title:"Bug study (Section 2): paper statistic vs dataset recomputation"
    ~headers:[ "statistic"; "recomputed"; "paper" ]
    [ row "bug fixes studied" (string_of_int t.total) "70";
      row "  Ext4" (string_of_int t.ext4) "51";
      row "  BtrFS" (string_of_int t.btrfs) "19";
      row "line-covered but missed" (fraction t.line_covered_missed t.total) "37/70 (53%)";
      row "func-covered but missed" (fraction t.func_covered_missed t.total) "43/70 (61%)";
      row "branch-covered but missed" (fraction t.branch_covered_missed t.total) "20/70 (29%)";
      row "input bugs" (fraction t.input_bugs t.total) "50/70 (71%)";
      row "output bugs" (fraction t.output_bugs t.total) "41/70 (59%)";
      row "input- or output-related" (fraction t.input_or_output t.total) "57/70 (81%)";
      row "covered-missed, input-triggerable"
        (fraction t.covered_missed_input_triggerable t.line_covered_missed)
        "24/37 (65%)" ]

let trigger_frequency bugs =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (b : Bug.t) ->
      List.iter
        (fun base ->
          let r =
            match Hashtbl.find_opt table base with
            | Some r -> r
            | None ->
              let r = ref 0 in
              Hashtbl.add table base r;
              r
          in
          incr r)
        b.Bug.trigger)
    bugs;
  List.filter_map
    (fun base ->
      match Hashtbl.find_opt table base with
      | Some r -> Some (base, !r)
      | None -> Some (base, 0))
    Model.all_bases
