(** Inodes.

    Regular-file contents are stored as {e extents} — sorted,
    non-overlapping [(offset, length, fill byte)] runs — rather than raw
    bytes.  IOCov workloads write up to hundreds of MiB per call
    (Figure 3 reaches 258 MiB), so materializing buffers is pointless:
    coverage depends only on sizes, while crash-consistency oracles and
    the differential tester only need contents to be {e checkable}, which
    fill-byte extents give at O(#writes) memory. Byte ranges not covered
    by an extent read back as zeros (holes). *)

type extent = { off : int; len : int; fill : char }

type body =
  | Reg of { mutable extents : extent list }
  | Dir of (string, int) Hashtbl.t  (** name -> child inode number *)
  | Symlink of string
  | Fifo
  | Device of { driverless : bool }
      (** [driverless] devices fail [open] with [ENXIO]; others [ENODEV]
          when the class is unavailable. *)

type t = {
  ino : int;
  mutable body : body;
  mutable mode : Iocov_syscall.Mode.t;
  mutable uid : int;
  mutable gid : int;
  mutable nlink : int;
  mutable size : int;  (** logical size of a regular file or symlink *)
  xattrs : (string, int * char) Hashtbl.t;  (** name -> (value size, fill) *)
  mutable immutable_ : bool;  (** chattr +i: modifications fail [EPERM] *)
  mutable executing : bool;   (** "running binary": write-opens fail [ETXTBSY] *)
  mutable busy : bool;        (** in use by another subsystem: [EBUSY] *)
  mutable mtime : int;
  mutable ctime : int;
}

val create : ino:int -> body:body -> mode:Iocov_syscall.Mode.t -> uid:int -> gid:int -> now:int -> t

val is_dir : t -> bool
val is_reg : t -> bool
val is_symlink : t -> bool

val dir_entries : t -> (string, int) Hashtbl.t
(** The entry table of a directory node.  Raises [Invalid_argument] on a
    non-directory. *)

val copy : t -> t
(** Deep copy (fresh extent list, entry table, xattr table) — the unit of
    the durable-snapshot crash model. *)

(** {2 Extent algebra} — exposed for property testing. *)

val write_extents : extent list -> off:int -> len:int -> fill:char -> extent list
(** Insert a run, splitting/trimming any overlapped older runs.
    Result remains sorted and non-overlapping; zero-length writes are
    identity. *)

val truncate_extents : extent list -> size:int -> extent list
(** Drop or trim runs at or beyond [size]. *)

val segments : extent list -> off:int -> len:int -> (int * int * char option) list
(** Decompose the byte range [\[off, off+len)] into maximal runs:
    [(start, length, Some fill)] for written data, [(start, length, None)]
    for holes.  Runs are contiguous and cover the range exactly. *)

val byte_at : extent list -> int -> char
(** Effective content at one offset (['\000'] in holes). *)

val next_data : extent list -> off:int -> int option
(** Smallest data offset >= [off] ([SEEK_DATA]); [None] if only hole
    remains. *)

val next_hole : extent list -> off:int -> int
(** Smallest hole offset >= [off] ([SEEK_HOLE]); every file has a hole at
    its end, so this always answers. *)

val content_checksum : t -> int
(** Order-independent digest of a regular file's (size, extents) — equal
    checksums iff equal logical contents.  Used by crash oracles and the
    differential tester. *)
