(** Injectable file-system faults.

    Each fault re-creates the {e shape} of a real bug class from the
    paper's Section 2 study: a deviation that only manifests for specific
    syscall inputs (boundary values, rare flags) or on specific output
    paths (wrong error code, missing error).  The differential tester in
    [iocov_bugstudy] plants these into a victim file system and measures
    which testing strategies expose them. *)

type t =
  | Xattr_ibody_overflow
      (** Figure 1's Ext4 bug: [setxattr] with the {e maximum} allowed
          value size passes the free-space check it should fail, so the
          call succeeds where it must return [ENOSPC]. *)
  | Truncate_efbig_unchecked
      (** [truncate] to exactly the file-size limit + 1 succeeds instead
          of returning [EFBIG] — a classic off-by-one boundary bug. *)
  | Write_zero_advances_offset
      (** A zero-byte [write] advances the file offset by one — only
          visible to tests that issue the POSIX-legal size-0 write. *)
  | Enospc_swallowed
      (** A [write] that runs out of blocks returns a short count of 0
          instead of [ENOSPC] — an output bug on the failure path. *)
  | Largefile_eoverflow
      (** [open] with [O_LARGEFILE] on a >=2 GiB file wrongly fails with
          [EOVERFLOW], as if the flag were ignored (cf. the XFS
          [generic_file_open] fix the paper cites for O_LARGEFILE). *)
  | Seek_hole_off_by_one
      (** [lseek(SEEK_HOLE)] inside the trailing hole answers
          [size + 1] instead of [size]. *)
  | Chmod_suid_kept
      (** [chmod] by a non-owner that should fail [EPERM] silently
          succeeds when only the setuid bit changes. *)
  | Getxattr_empty_enodata
      (** [getxattr] of an existing attribute whose value is empty
          wrongly reports [ENODATA]. *)
  | Nowait_write_enospc
      (** The BtrFS NOWAIT bug the paper cites: a non-blocking buffered
          [write] returns [ENOSPC] even though space is available. *)
  | Fsync_skips_data
      (** Crash-consistency bug: [fsync] persists metadata but not data,
          so a crash after a successful fsync loses file contents. *)
  | Creat_mode_ignored
      (** [open(O_CREAT)] ignores the low mode bits and creates the file
          with mode 0 — only tests that re-open read-only as another user
          notice. *)
  | Mkdir_sticky_lost
      (** [mkdir] drops the sticky bit from the requested mode. *)

val all : t list
val to_string : t -> string
val of_string : string -> t option
val describe : t -> string
(** One-line summary of the observable deviation. *)

val compare : t -> t -> int
val equal : t -> t -> bool
