type t =
  | Xattr_ibody_overflow
  | Truncate_efbig_unchecked
  | Write_zero_advances_offset
  | Enospc_swallowed
  | Largefile_eoverflow
  | Seek_hole_off_by_one
  | Chmod_suid_kept
  | Getxattr_empty_enodata
  | Nowait_write_enospc
  | Fsync_skips_data
  | Creat_mode_ignored
  | Mkdir_sticky_lost

let all =
  [ Xattr_ibody_overflow; Truncate_efbig_unchecked; Write_zero_advances_offset;
    Enospc_swallowed; Largefile_eoverflow; Seek_hole_off_by_one;
    Chmod_suid_kept; Getxattr_empty_enodata; Nowait_write_enospc;
    Fsync_skips_data; Creat_mode_ignored; Mkdir_sticky_lost ]

let to_string = function
  | Xattr_ibody_overflow -> "xattr_ibody_overflow"
  | Truncate_efbig_unchecked -> "truncate_efbig_unchecked"
  | Write_zero_advances_offset -> "write_zero_advances_offset"
  | Enospc_swallowed -> "enospc_swallowed"
  | Largefile_eoverflow -> "largefile_eoverflow"
  | Seek_hole_off_by_one -> "seek_hole_off_by_one"
  | Chmod_suid_kept -> "chmod_suid_kept"
  | Getxattr_empty_enodata -> "getxattr_empty_enodata"
  | Nowait_write_enospc -> "nowait_write_enospc"
  | Fsync_skips_data -> "fsync_skips_data"
  | Creat_mode_ignored -> "creat_mode_ignored"
  | Mkdir_sticky_lost -> "mkdir_sticky_lost"

let of_string s = List.find_opt (fun f -> to_string f = s) all

let describe = function
  | Xattr_ibody_overflow ->
    "setxattr at the maximum value size succeeds where ENOSPC is required (Fig. 1)"
  | Truncate_efbig_unchecked -> "truncate to max_file_size+1 succeeds instead of EFBIG"
  | Write_zero_advances_offset -> "zero-byte write advances the file offset"
  | Enospc_swallowed -> "out-of-space write returns 0 instead of ENOSPC"
  | Largefile_eoverflow -> "open(O_LARGEFILE) of a >=2GiB file wrongly fails EOVERFLOW"
  | Seek_hole_off_by_one -> "lseek(SEEK_HOLE) answers size+1 inside the trailing hole"
  | Chmod_suid_kept -> "non-owner chmod of the setuid bit succeeds instead of EPERM"
  | Getxattr_empty_enodata -> "getxattr of an empty value wrongly reports ENODATA"
  | Nowait_write_enospc -> "non-blocking buffered write returns ENOSPC with space available"
  | Fsync_skips_data -> "fsync persists metadata but loses data across a crash"
  | Creat_mode_ignored -> "open(O_CREAT) creates the file with mode 0"
  | Mkdir_sticky_lost -> "mkdir drops the sticky bit from the requested mode"

let compare = Stdlib.compare
let equal a b = compare a b = 0
