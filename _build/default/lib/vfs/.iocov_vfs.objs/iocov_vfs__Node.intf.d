lib/vfs/node.mli: Hashtbl Iocov_syscall
