lib/vfs/fs.mli: Config Iocov_syscall
