lib/vfs/path.ml: Errno Iocov_syscall List String
