lib/vfs/path.mli: Iocov_syscall
