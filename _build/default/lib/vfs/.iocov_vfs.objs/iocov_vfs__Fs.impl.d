lib/vfs/fs.ml: Char Config Errno Fault Hashtbl Iocov_syscall List Mode Model Node Open_flags Path Printf Result String Whence Xattr_flag
