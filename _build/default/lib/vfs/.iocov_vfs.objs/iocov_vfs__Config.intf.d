lib/vfs/config.mli: Fault
