lib/vfs/fault.mli:
