lib/vfs/node.ml: Hashtbl Iocov_syscall List String
