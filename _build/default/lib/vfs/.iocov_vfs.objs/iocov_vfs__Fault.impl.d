lib/vfs/fault.ml: List Stdlib
