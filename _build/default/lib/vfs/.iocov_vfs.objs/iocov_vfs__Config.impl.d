lib/vfs/config.ml: Fault
