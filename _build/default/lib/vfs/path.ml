type t = {
  absolute : bool;
  components : string list;
  trailing_slash : bool;
}

let parse ~max_name_len ~max_path_len s =
  let open Iocov_syscall in
  if String.length s = 0 then Error Errno.ENOENT
  else if String.length s > max_path_len then Error Errno.ENAMETOOLONG
  else begin
    let absolute = s.[0] = '/' in
    let trailing_slash = String.length s > 1 && s.[String.length s - 1] = '/' in
    let components = List.filter (fun c -> c <> "") (String.split_on_char '/' s) in
    if List.exists (fun c -> String.length c > max_name_len) components then
      Error Errno.ENAMETOOLONG
    else Ok { absolute; components; trailing_slash }
  end

let to_string { absolute; components; trailing_slash } =
  let body = String.concat "/" components in
  let prefix = if absolute then "/" else "" in
  let suffix = if trailing_slash && components <> [] then "/" else "" in
  prefix ^ body ^ suffix

let join dir name =
  if dir = "" then name
  else if String.length dir > 0 && dir.[String.length dir - 1] = '/' then dir ^ name
  else dir ^ "/" ^ name

let basename p =
  let parts = List.filter (fun c -> c <> "") (String.split_on_char '/' p) in
  match List.rev parts with
  | [] -> "/"
  | last :: _ -> last
