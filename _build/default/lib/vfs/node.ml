type extent = { off : int; len : int; fill : char }

type body =
  | Reg of { mutable extents : extent list }
  | Dir of (string, int) Hashtbl.t
  | Symlink of string
  | Fifo
  | Device of { driverless : bool }

type t = {
  ino : int;
  mutable body : body;
  mutable mode : Iocov_syscall.Mode.t;
  mutable uid : int;
  mutable gid : int;
  mutable nlink : int;
  mutable size : int;
  xattrs : (string, int * char) Hashtbl.t;
  mutable immutable_ : bool;
  mutable executing : bool;
  mutable busy : bool;
  mutable mtime : int;
  mutable ctime : int;
}

let create ~ino ~body ~mode ~uid ~gid ~now =
  let nlink = match body with Dir _ -> 2 | _ -> 1 in
  {
    ino; body; mode; uid; gid; nlink;
    size = (match body with Symlink s -> String.length s | _ -> 0);
    xattrs = Hashtbl.create 4;
    immutable_ = false; executing = false; busy = false;
    mtime = now; ctime = now;
  }

let is_dir t = match t.body with Dir _ -> true | _ -> false
let is_reg t = match t.body with Reg _ -> true | _ -> false
let is_symlink t = match t.body with Symlink _ -> true | _ -> false

let dir_entries t =
  match t.body with
  | Dir entries -> entries
  | _ -> invalid_arg "Node.dir_entries: not a directory"

let copy t =
  let body =
    match t.body with
    | Reg { extents } -> Reg { extents }
    | Dir entries -> Dir (Hashtbl.copy entries)
    | Symlink s -> Symlink s
    | Fifo -> Fifo
    | Device d -> Device d
  in
  { t with body; xattrs = Hashtbl.copy t.xattrs }

(* --- Extent algebra ---
   Invariant maintained by every operation: extents are sorted by [off],
   non-overlapping, and have positive [len]. *)

let ext_end e = e.off + e.len

(* Remove the byte range [off, off+len) from a run list, splitting runs
   that straddle the range boundary. *)
let carve extents ~off ~len =
  let stop = off + len in
  List.concat_map
    (fun e ->
      if ext_end e <= off || e.off >= stop then [ e ]
      else begin
        let left =
          if e.off < off then [ { e with len = off - e.off } ] else []
        in
        let right =
          if ext_end e > stop then [ { off = stop; len = ext_end e - stop; fill = e.fill } ]
          else []
        in
        left @ right
      end)
    extents

let write_extents extents ~off ~len ~fill =
  if len < 0 || off < 0 then invalid_arg "Node.write_extents";
  if len = 0 then extents
  else begin
    let carved = carve extents ~off ~len in
    List.sort (fun a b -> compare a.off b.off) ({ off; len; fill } :: carved)
  end

let truncate_extents extents ~size =
  if size < 0 then invalid_arg "Node.truncate_extents";
  List.filter_map
    (fun e ->
      if e.off >= size then None
      else if ext_end e <= size then Some e
      else Some { e with len = size - e.off })
    extents

let segments extents ~off ~len =
  if len < 0 || off < 0 then invalid_arg "Node.segments";
  let stop = off + len in
  let relevant =
    List.filter (fun e -> ext_end e > off && e.off < stop) extents
  in
  let rec go pos acc = function
    | [] ->
      let acc = if pos < stop then (pos, stop - pos, None) :: acc else acc in
      List.rev acc
    | e :: rest ->
      let acc = if e.off > pos then (pos, e.off - pos, None) :: acc else acc in
      let data_start = max pos e.off in
      let data_stop = min stop (ext_end e) in
      let acc =
        if data_stop > data_start then (data_start, data_stop - data_start, Some e.fill) :: acc
        else acc
      in
      go (max pos data_stop) acc rest
  in
  if len = 0 then [] else go off [] relevant

let byte_at extents pos =
  match List.find_opt (fun e -> e.off <= pos && pos < ext_end e) extents with
  | Some e -> e.fill
  | None -> '\000'

let next_data extents ~off =
  let candidates =
    List.filter_map
      (fun e -> if ext_end e > off then Some (max off e.off) else None)
      extents
  in
  match candidates with [] -> None | l -> Some (List.fold_left min max_int l)

let next_hole extents ~off =
  (* Walk forward from [off]; inside a run, jump to its end. *)
  let rec go pos =
    match List.find_opt (fun e -> e.off <= pos && pos < ext_end e) extents with
    | Some e -> go (ext_end e)
    | None -> pos
  in
  go off

let content_checksum t =
  match t.body with
  | Reg { extents } ->
    (* Normalize: merge adjacent same-fill runs so that logically equal
       contents hash equally regardless of write history. *)
    let sorted = List.sort (fun a b -> compare a.off b.off) extents in
    let merged =
      List.fold_left
        (fun acc e ->
          match acc with
          | prev :: rest when ext_end prev = e.off && prev.fill = e.fill ->
            { prev with len = prev.len + e.len } :: rest
          | acc -> e :: acc)
        [] sorted
    in
    List.fold_left
      (fun acc e ->
        let h = Hashtbl.hash (e.off, e.len, e.fill) in
        (acc * 1000003) lxor h)
      (Hashtbl.hash t.size)
      (List.rev merged)
  | _ -> invalid_arg "Node.content_checksum: not a regular file"
