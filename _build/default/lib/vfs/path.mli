(** Pathname parsing and limits.

    Splits a pathname into components, enforcing the name-length and
    path-length limits that produce [ENAMETOOLONG], and the POSIX rule
    that an empty pathname is [ENOENT].  ["."] and [".."] are kept as
    components for the resolver to interpret. *)

type t = {
  absolute : bool;
  components : string list;  (** in traversal order; no empty components *)
  trailing_slash : bool;     (** ["a/b/"] — the final component must be a
                                 directory *)
}

val parse :
  max_name_len:int -> max_path_len:int -> string ->
  (t, Iocov_syscall.Errno.t) result
(** [Error ENOENT] on the empty string, [Error ENAMETOOLONG] when the
    whole path or any component exceeds its limit. *)

val to_string : t -> string
(** Canonical rendering (["/"] for an absolute path with no
    components). *)

val join : string -> string -> string
(** [join dir name] concatenates with exactly one separator. *)

val basename : string -> string
(** Final component of a rendered path (["/"] for the root). *)
