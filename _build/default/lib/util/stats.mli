(** Descriptive statistics used by the TCD metric and the reports.

    The paper's Test Coverage Deviation is a Root Mean Square Deviation over
    log-frequencies (Section 4); the log transform is kept here so the core
    library and the ablation benches share one definition. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val rmsd : float array -> float array -> float
(** [rmsd a b] is [sqrt (1/N * sum (a_i - b_i)^2)].  Arrays must have equal,
    positive length. *)

val log10_freq : int -> float
(** [log10_freq f] is the log-domain value of a frequency: [log10 f] for
    [f >= 1] and [0.] for [f = 0] — an untested partition sits at the same
    point as a once-tested one, which matches the paper's choice of
    penalising under-testing in orders of magnitude. *)

val percentage : int -> int -> float
(** [percentage part whole] is [100. *. part / whole]; 0 if [whole = 0]. *)

val geometric_mean : float array -> float
(** Geometric mean of positive values; 0 for an empty array. *)

val median : float array -> float
(** Median (average of middle two for even length); 0 for empty. *)
