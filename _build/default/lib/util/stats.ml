let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let rmsd a b =
  let n = Array.length a in
  if n = 0 || n <> Array.length b then invalid_arg "Stats.rmsd";
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int n)

let log10_freq f =
  if f < 0 then invalid_arg "Stats.log10_freq: negative frequency";
  if f = 0 then 0.0 else log10 (float_of_int f)

let percentage part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let geometric_mean a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive value";
        acc := !acc +. log x)
      a;
    exp (!acc /. float_of_int n)
  end

let median a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy a in
    Array.sort compare sorted;
    if n mod 2 = 1 then sorted.(n / 2)
    else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.0
  end
