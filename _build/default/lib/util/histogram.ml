type 'k t = {
  compare : 'k -> 'k -> int;
  table : ('k, int ref) Hashtbl.t;
  mutable total : int;
}

let create ~compare = { compare; table = Hashtbl.create 64; total = 0 }

let add h ?(count = 1) k =
  if count < 0 then invalid_arg "Histogram.add: negative count";
  if count > 0 then begin
    (match Hashtbl.find_opt h.table k with
     | Some r -> r := !r + count
     | None -> Hashtbl.add h.table k (ref count));
    h.total <- h.total + count
  end

let count h k = match Hashtbl.find_opt h.table k with Some r -> !r | None -> 0
let total h = h.total
let distinct h = Hashtbl.length h.table
let mem h k = count h k > 0

let to_sorted h =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) h.table []
  |> List.sort (fun (a, _) (b, _) -> h.compare a b)

let keys h = List.map fst (to_sorted h)

let merge_into ~dst src =
  (* snapshot first: mutating a table while iterating it is undefined,
     and [merge_into ~dst:h h] (self-doubling) must work *)
  let entries = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) src.table [] in
  List.iter (fun (k, count) -> add dst ~count k) entries

let copy h =
  let fresh = create ~compare:h.compare in
  merge_into ~dst:fresh h;
  fresh

let clear h =
  Hashtbl.reset h.table;
  h.total <- 0

let max_frequency h = Hashtbl.fold (fun _ r acc -> max !r acc) h.table 0

let fold f h init =
  List.fold_left (fun acc (k, n) -> f k n acc) init (to_sorted h)

let map_sum f h = fold (fun k n acc -> acc + f k n) h 0
