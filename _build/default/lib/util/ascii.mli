(** Plain-text rendering of the paper's tables and figures.

    Every bench target prints through these helpers so that
    [bench/main.exe] output lines up with the rows and series of the
    paper's evaluation section. *)

type align = Left | Right

val table :
  ?title:string -> headers:string list -> ?aligns:align list ->
  string list list -> string
(** [table ~headers rows] renders a boxed, column-aligned table.  [aligns]
    defaults to left for the first column and right for the rest.  Rows
    shorter than [headers] are padded with empty cells. *)

val log_bar_chart :
  ?title:string -> ?width:int -> (string * int) list -> string
(** [log_bar_chart series] renders one bar per (label, frequency) with bar
    length proportional to log10(frequency), annotated with the raw count —
    the textual analogue of the paper's log-scale figures.  Zero
    frequencies render as an explicit [(untested)] marker. *)

val grouped_log_chart :
  ?title:string -> ?width:int ->
  group_names:string * string ->
  (string * int * int) list -> string
(** [grouped_log_chart ~group_names:(a, b) rows] renders, for each
    (label, freq_a, freq_b) row, two adjacent log-scale bars — used for the
    CrashMonkey-vs-xfstests comparisons of Figures 2-4. *)

val float_cell : float -> string
(** Compact fixed-point rendering (1 decimal) for percentage cells. *)

val si_count : int -> string
(** Human count with thousands separators, e.g. ["4,099,770"]. *)
