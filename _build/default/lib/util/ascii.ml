type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let si_count n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_cell x = Printf.sprintf "%.1f" x

let table ?title ~headers ?aligns rows =
  let ncols = List.length headers in
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> Array.of_list a
    | Some _ -> invalid_arg "Ascii.table: aligns length mismatch"
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let normalize row =
    let row = if List.length row > ncols then List.filteri (fun i _ -> i < ncols) row else row in
    row @ List.init (ncols - List.length row) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let render_row cells =
    let parts =
      List.mapi (fun i cell -> pad aligns.(i) widths.(i) cell) cells
    in
    "| " ^ String.concat " | " parts ^ " |"
  in
  let rule =
    "+"
    ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let buf = Buffer.create 256 in
  (match title with
   | Some t -> Buffer.add_string buf (t ^ "\n")
   | None -> ());
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (render_row headers ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.add_string buf rule;
  Buffer.contents buf

let bar_of_freq ~width ~max_log freq =
  if freq = 0 then "(untested)"
  else begin
    let lf = Stats.log10_freq freq +. 1.0 in
    let len = int_of_float (ceil (lf /. max_log *. float_of_int width)) in
    let len = max 1 (min width len) in
    String.make len '#' ^ Printf.sprintf " %s" (si_count freq)
  end

let log_bar_chart ?title ?(width = 48) series =
  let label_w = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 series in
  let max_freq = List.fold_left (fun acc (_, f) -> max acc f) 1 series in
  let max_log = Stats.log10_freq max_freq +. 1.0 in
  let buf = Buffer.create 256 in
  (match title with Some t -> Buffer.add_string buf (t ^ "\n") | None -> ());
  List.iter
    (fun (label, freq) ->
      Buffer.add_string buf
        (Printf.sprintf "%s | %s\n" (pad Left label_w label)
           (bar_of_freq ~width ~max_log freq)))
    series;
  Buffer.contents buf

let grouped_log_chart ?title ?(width = 40) ~group_names rows =
  let name_a, name_b = group_names in
  let label_w = List.fold_left (fun acc (l, _, _) -> max acc (String.length l)) 0 rows in
  let tag_w = max (String.length name_a) (String.length name_b) in
  let max_freq = List.fold_left (fun acc (_, a, b) -> max acc (max a b)) 1 rows in
  let max_log = Stats.log10_freq max_freq +. 1.0 in
  let buf = Buffer.create 512 in
  (match title with Some t -> Buffer.add_string buf (t ^ "\n") | None -> ());
  List.iter
    (fun (label, fa, fb) ->
      Buffer.add_string buf
        (Printf.sprintf "%s  %s | %s\n" (pad Left label_w label)
           (pad Left tag_w name_a)
           (bar_of_freq ~width ~max_log fa));
      Buffer.add_string buf
        (Printf.sprintf "%s  %s | %s\n" (String.make label_w ' ')
           (pad Left tag_w name_b)
           (bar_of_freq ~width ~max_log fb)))
    rows;
  Buffer.contents buf
