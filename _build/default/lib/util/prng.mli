(** Deterministic pseudo-random number generation.

    IOCov's workload simulators must be exactly reproducible from a seed so
    that every figure in EXPERIMENTS.md can be regenerated bit-for-bit.  The
    implementation is SplitMix64 (Steele, Lea & Flood, OOPSLA'14), a small,
    fast, well-distributed generator that also supports {!split}ting into
    independent streams — one stream per simulated test program keeps suites
    order-independent. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.  Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val weighted : t -> (int * 'a) list -> 'a
(** [weighted t choices] picks an element with probability proportional to
    its (positive) integer weight.  The list must contain at least one
    entry of positive weight. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pow2_size : t -> max_log2:int -> int
(** [pow2_size t ~max_log2] draws a byte count whose log2 bucket is uniform
    in [\[0, max_log2\]], then uniform within the bucket — the natural
    generator for "cover every power-of-two partition" workloads. *)
