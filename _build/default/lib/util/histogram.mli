(** Frequency counting over arbitrary partition keys.

    Coverage in IOCov is a map from partition identifiers to how many times
    a test suite exercised that partition.  This module is the shared
    counter: a polymorphic multiset with deterministic (sorted) iteration so
    reports and tests are stable. *)

type 'k t
(** A frequency table over keys of type ['k], ordered by a comparison
    function fixed at creation. *)

val create : compare:('k -> 'k -> int) -> 'k t
(** Fresh empty histogram using [compare] as the key order. *)

val add : 'k t -> ?count:int -> 'k -> unit
(** [add h k] increments [k]'s frequency by [count] (default 1).
    [count] must be non-negative. *)

val count : 'k t -> 'k -> int
(** Frequency of [k]; 0 if never added. *)

val total : 'k t -> int
(** Sum of all frequencies. *)

val distinct : 'k t -> int
(** Number of keys with frequency > 0. *)

val mem : 'k t -> 'k -> bool
(** [mem h k] is [count h k > 0]. *)

val to_sorted : 'k t -> ('k * int) list
(** All (key, frequency) pairs in ascending key order. *)

val keys : 'k t -> 'k list
(** Keys with positive frequency, ascending. *)

val merge_into : dst:'k t -> 'k t -> unit
(** [merge_into ~dst src] adds every frequency of [src] into [dst]. *)

val copy : 'k t -> 'k t

val clear : 'k t -> unit

val max_frequency : 'k t -> int
(** Largest frequency present, or 0 for an empty histogram. *)

val fold : ('k -> int -> 'a -> 'a) -> 'k t -> 'a -> 'a
(** Fold over (key, frequency) pairs in ascending key order. *)

val map_sum : ('k -> int -> int) -> 'k t -> int
(** [map_sum f h] sums [f k freq] over all entries. *)
