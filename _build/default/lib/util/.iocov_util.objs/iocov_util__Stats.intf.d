lib/util/stats.mli:
