lib/util/ascii.ml: Array Buffer List Printf Stats String
