lib/util/log2.mli:
