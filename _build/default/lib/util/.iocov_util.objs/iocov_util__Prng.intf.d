lib/util/prng.mli:
