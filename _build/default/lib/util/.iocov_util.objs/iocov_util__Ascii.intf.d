lib/util/ascii.mli:
