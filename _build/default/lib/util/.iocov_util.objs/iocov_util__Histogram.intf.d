lib/util/histogram.mli:
