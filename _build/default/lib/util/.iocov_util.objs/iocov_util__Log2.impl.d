lib/util/log2.ml: Array List Printf
