(** Power-of-two bucketing for numeric input/output partitions.

    The paper partitions numeric syscall arguments (write sizes, seek
    offsets, truncate lengths, ...) by powers of two, with dedicated
    partitions for the boundary value [0] and, where an argument admits
    them, negative values (Section 3, "Input- and output-space
    partitioning").  Bucket [k] covers the closed interval
    [\[2^k, 2^(k+1) - 1\]]. *)

type bucket =
  | Negative      (** any value < 0 (e.g. [lseek] offsets) *)
  | Zero          (** exactly 0 — "Equal to 0" in Figure 3 *)
  | Pow2 of int   (** values in [\[2{^k}, 2{^k+1} - 1\]], [k >= 0] *)

val compare_bucket : bucket -> bucket -> int
(** Total order: [Negative < Zero < Pow2 0 < Pow2 1 < ...]. *)

val equal_bucket : bucket -> bucket -> bool

val bucket_of_int : int -> bucket
(** [bucket_of_int n] rounds [n] down to the nearest power-of-two
    boundary. *)

val bucket_lo : bucket -> int
(** Smallest value in the bucket ([min_int] for [Negative]). *)

val bucket_hi : bucket -> int
(** Largest value in the bucket ([-1] for [Negative]). *)

val bucket_label : bucket -> string
(** Short axis label, e.g. ["=0"], ["<0"], ["2^10"]. *)

val bucket_size_label : bucket -> string
(** Human byte-size label for the bucket's lower bound, e.g. ["1KiB"] for
    [Pow2 10] — Figure 3's secondary x-axis. *)

val range : lo:int -> hi:int -> bucket list
(** [range ~lo ~hi] is [\[Pow2 lo; ...; Pow2 hi\]]. *)

val floor_log2 : int -> int
(** [floor_log2 n] for [n >= 1]. *)

val pow2 : int -> int
(** [pow2 k] is [2{^k}]; requires [0 <= k <= 62]. *)

val human_bytes : int -> string
(** [human_bytes n] renders [n] with binary units, e.g. ["258MiB"]. *)
