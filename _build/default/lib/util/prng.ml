type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64 output function: two xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  (* mask to 62 bits: Int64.to_int of a 63-bit value overflows OCaml's
     63-bit native int into the negatives *)
  let raw = Int64.to_int (next_int64 t) land max_int in
  raw mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (raw /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Prng.choose_list: empty list"
  | l -> List.nth l (int t (List.length l))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 choices in
  if total <= 0 then invalid_arg "Prng.weighted: no positive weight";
  let pick = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Prng.weighted: unreachable"
    | (w, x) :: rest ->
      let acc = acc + max 0 w in
      if pick < acc then x else go acc rest
  in
  go 0 choices

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pow2_size t ~max_log2 =
  assert (max_log2 >= 0 && max_log2 < 62);
  let k = int t (max_log2 + 1) in
  let lo = 1 lsl k in
  let hi = (1 lsl (k + 1)) - 1 in
  int_in t lo hi
