type bucket = Negative | Zero | Pow2 of int

let rank = function Negative -> -2 | Zero -> -1 | Pow2 k -> k
let compare_bucket a b = compare (rank a) (rank b)
let equal_bucket a b = rank a = rank b

let floor_log2 n =
  if n < 1 then invalid_arg "Log2.floor_log2";
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let pow2 k =
  if k < 0 || k > 62 then invalid_arg "Log2.pow2";
  1 lsl k

let bucket_of_int n =
  if n < 0 then Negative else if n = 0 then Zero else Pow2 (floor_log2 n)

let bucket_lo = function
  | Negative -> min_int
  | Zero -> 0
  | Pow2 k -> pow2 k

let bucket_hi = function
  | Negative -> -1
  | Zero -> 0
  | Pow2 k -> if k >= 62 then max_int else pow2 (k + 1) - 1

let bucket_label = function
  | Negative -> "<0"
  | Zero -> "=0"
  | Pow2 k -> Printf.sprintf "2^%d" k

let units = [| "B"; "KiB"; "MiB"; "GiB"; "TiB"; "PiB" |]

let human_bytes n =
  if n < 0 then Printf.sprintf "%dB" n
  else begin
    let rec go v u = if v >= 1024 && u < Array.length units - 1 then go (v / 1024) (u + 1) else (v, u) in
    let v, u = go n 0 in
    Printf.sprintf "%d%s" v units.(u)
  end

let bucket_size_label = function
  | Negative -> "<0B"
  | Zero -> "0B"
  | Pow2 k -> human_bytes (pow2 k)

let range ~lo ~hi =
  if lo < 0 || hi < lo then invalid_arg "Log2.range";
  List.init (hi - lo + 1) (fun i -> Pow2 (lo + i))
