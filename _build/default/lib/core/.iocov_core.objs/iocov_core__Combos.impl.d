lib/core/combos.ml: Hashtbl Iocov_syscall Iocov_util List Open_flags
