lib/core/adequacy.ml: Coverage List Printf String
