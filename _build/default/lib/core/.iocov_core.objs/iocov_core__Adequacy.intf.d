lib/core/adequacy.mli: Arg_class Coverage Iocov_syscall Partition
