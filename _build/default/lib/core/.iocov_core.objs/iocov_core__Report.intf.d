lib/core/report.mli: Arg_class Coverage Iocov_syscall Model
