lib/core/partition.ml: Arg_class Errno Iocov_syscall Iocov_util List Mode Model Open_flags Printf Stdlib String Whence Xattr_flag
