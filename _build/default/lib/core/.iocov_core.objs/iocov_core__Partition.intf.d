lib/core/partition.mli: Arg_class Errno Iocov_syscall Iocov_util Mode Model Open_flags Whence Xattr_flag
