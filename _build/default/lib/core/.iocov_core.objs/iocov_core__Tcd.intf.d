lib/core/tcd.mli:
