lib/core/tcd.ml: Array Iocov_util List
