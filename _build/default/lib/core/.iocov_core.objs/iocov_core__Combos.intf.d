lib/core/combos.mli: Iocov_syscall Open_flags
