lib/core/arg_class.mli: Iocov_syscall
