lib/core/coverage.ml: Arg_class Hashtbl Iocov_syscall Iocov_util List Model Open_flags Partition Stdlib
