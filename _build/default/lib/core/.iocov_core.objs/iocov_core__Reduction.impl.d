lib/core/reduction.ml: Arg_class Coverage Hashtbl Iocov_syscall Lazy List Model Partition Printf String
