lib/core/snapshot.ml: Arg_class Buffer Coverage Fun In_channel Iocov_syscall List Model Open_flags Partition Printf Result String
