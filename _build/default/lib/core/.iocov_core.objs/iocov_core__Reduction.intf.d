lib/core/reduction.mli: Coverage Hashtbl
