lib/core/snapshot.mli: Coverage
