lib/core/coverage.mli: Arg_class Errno Iocov_syscall Model Open_flags Partition
