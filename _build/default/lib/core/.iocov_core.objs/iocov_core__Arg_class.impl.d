lib/core/arg_class.ml: Iocov_syscall List
