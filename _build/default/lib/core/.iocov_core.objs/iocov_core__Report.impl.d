lib/core/report.ml: Adequacy Arg_class Array Buffer Combos Coverage Errno Iocov_syscall Iocov_util List Model Open_flags Partition Printf String Tcd
