type verdict =
  | Untested
  | Under_tested
  | Adequate
  | Over_tested

let verdict_name = function
  | Untested -> "untested"
  | Under_tested -> "under-tested"
  | Adequate -> "adequate"
  | Over_tested -> "over-tested"

let classify ~frequency ~target ~theta =
  if theta < 1.0 then invalid_arg "Adequacy.classify: theta < 1";
  if target <= 0.0 then invalid_arg "Adequacy.classify: non-positive target";
  if frequency = 0 then Untested
  else begin
    let f = float_of_int frequency in
    if f < target /. theta then Under_tested
    else if f > target *. theta then Over_tested
    else Adequate
  end

let input_report cov arg ~target ~theta =
  List.map
    (fun (p, freq) -> (p, freq, classify ~frequency:freq ~target ~theta))
    (Coverage.input_series cov arg)

let output_report cov base ~target ~theta =
  List.map
    (fun (o, freq) -> (o, freq, classify ~frequency:freq ~target ~theta))
    (Coverage.output_series cov base)

type summary = { untested : int; under : int; adequate : int; over : int }

let summarize rows =
  List.fold_left
    (fun acc (_, _, v) ->
      match v with
      | Untested -> { acc with untested = acc.untested + 1 }
      | Under_tested -> { acc with under = acc.under + 1 }
      | Adequate -> { acc with adequate = acc.adequate + 1 }
      | Over_tested -> { acc with over = acc.over + 1 })
    { untested = 0; under = 0; adequate = 0; over = 0 }
    rows

let rebalance_hint label rows =
  let untested = List.filter (fun (_, _, v) -> v = Untested) rows in
  let over = List.filter (fun (_, _, v) -> v = Over_tested) rows in
  let hints = ref [] in
  (match untested with
   | [] -> ()
   | l ->
     hints :=
       Printf.sprintf "add tests for untested partitions: %s"
         (String.concat ", " (List.map (fun (p, _, _) -> label p) l))
       :: !hints);
  (match over with
   | [] -> ()
   | l ->
     hints :=
       Printf.sprintf "divert effort from over-tested partitions: %s"
         (String.concat ", " (List.map (fun (p, _, _) -> label p) l))
       :: !hints);
  List.rev !hints
