(** Input- and output-space partitioning (Section 3).

    Bitmap arguments are partitioned by individual flag (each set flag
    counts its partition); numeric arguments by powers of two with
    dedicated boundary partitions for zero and (where admissible)
    negative values; categorical arguments by value.  Outputs are
    partitioned into success vs. each error code, with byte-count
    successes further split by powers of two. *)

open Iocov_syscall

(** An input partition identifier. *)
type t =
  | P_flag of Open_flags.flag
  | P_mode_bit of Mode.bit
  | P_mode_zero      (** mode 0000 — the boundary "no permission bits" *)
  | P_bucket of Iocov_util.Log2.bucket
  | P_whence of Whence.t
  | P_xflag of Xattr_flag.t

val compare : t -> t -> int
val equal : t -> t -> bool

val label : t -> string
(** Axis label: flag/bit names, ["=0"], ["2^10"], ...  Never contains
    whitespace, so it doubles as the snapshot-format token. *)

val of_label : string -> t option
(** Inverse of {!label}.  Accepts buckets beyond any argument's domain
    (an observed partition need not be a domain member). *)

val of_call : Model.call -> (Arg_class.arg * t) list
(** Every (argument, partition) pair one call exercises.  A bitmap
    argument contributes one pair per set flag; other argument classes
    contribute exactly one pair.  Variant merging happens here: a
    [pread64] feeds the same [Read_count]/[Read_offset] partitions as a
    [read]. *)

val domain : Arg_class.arg -> t list
(** The full partition domain of an argument — the denominator for
    untested-partition reports.  Numeric domains span the zero partition
    plus log2 buckets up to the argument's natural width (32 for byte
    counts and offsets — Figure 3's axis — and 16 for xattr value
    sizes), plus the negative partition where the type is signed. *)

(** {2 Outputs} *)

type output =
  | O_ok                 (** success of a non-byte-count syscall *)
  | O_ok_zero            (** byte-count success returning 0 *)
  | O_ok_bucket of int   (** byte-count success in [\[2{^k}, 2{^k+1})] *)
  | O_err of Errno.t

val compare_output : output -> output -> int
val equal_output : output -> output -> bool

val output_label : output -> string
(** ["OK"], ["OK=0"], ["OK 2^5"], or the errno name. *)

val output_token : output -> string
(** Whitespace-free form of {!output_label} (["OK:2^5"]) for the
    snapshot format. *)

val output_of_token : string -> output option
(** Inverse of {!output_token}. *)

val output_of : Model.base -> Model.outcome -> output
(** Partition one outcome.  Negative successes cannot occur; byte-count
    syscalls bucket their return, everything else collapses to
    [O_ok]. *)

val output_domain : Model.base -> output list
(** Success partitions plus each manual-page error code.  For byte-count
    syscalls the success side enumerates [O_ok_zero] and buckets
    [0..32]; the coarse Figure-4 view groups them via
    {!output_success_group}. *)

val output_is_error : output -> bool

val output_success_group : output -> [ `Ok | `Err of Errno.t ]
(** Collapse byte-count success buckets into one ["OK (>= 0)"] column —
    exactly Figure 4's x-axis. *)
