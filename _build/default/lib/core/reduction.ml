open Iocov_syscall

type item = {
  name : string;
  coverage : Coverage.t;
}

type selection = {
  chosen : string list;
  covered : int;
  total_covered : int;
  universe : int;
}

let partition_set cov =
  let set = Hashtbl.create 64 in
  List.iter
    (fun arg ->
      List.iter
        (fun (part, n) ->
          if n > 0 then
            Hashtbl.replace set (Arg_class.name arg ^ "/" ^ Partition.label part) ())
        (Coverage.input_histogram cov arg))
    Arg_class.all;
  List.iter
    (fun base ->
      List.iter
        (fun (out, n) ->
          if n > 0 && Partition.output_is_error out then
            Hashtbl.replace set (Model.base_name base ^ "/" ^ Partition.output_token out) ())
        (Coverage.output_histogram cov base))
    Model.all_bases;
  set

let universe_size =
  lazy
    (List.fold_left
       (fun acc arg -> acc + List.length (Partition.domain arg))
       0 Arg_class.all
     + List.fold_left
         (fun acc base ->
           acc
           + List.length
               (List.filter Partition.output_is_error (Partition.output_domain base)))
         0 Model.all_bases)

let greedy items =
  let sets = List.map (fun item -> (item.name, partition_set item.coverage)) items in
  let goal = Hashtbl.create 256 in
  List.iter (fun (_, set) -> Hashtbl.iter (fun k () -> Hashtbl.replace goal k ()) set) sets;
  let total_covered = Hashtbl.length goal in
  let covered = Hashtbl.create 256 in
  let remaining = ref sets in
  let chosen = ref [] in
  let continue = ref true in
  while !continue do
    let gain_of set =
      Hashtbl.fold (fun k () acc -> if Hashtbl.mem covered k then acc else acc + 1) set 0
    in
    let best =
      List.fold_left
        (fun best (name, set) ->
          let gain = gain_of set in
          match best with
          | Some (_, _, best_gain) when best_gain >= gain -> best
          | _ when gain = 0 -> best
          | _ -> Some (name, set, gain))
        None !remaining
    in
    match best with
    | None -> continue := false
    | Some (name, set, _gain) ->
      Hashtbl.iter (fun k () -> Hashtbl.replace covered k ()) set;
      chosen := name :: !chosen;
      remaining := List.filter (fun (n, _) -> n <> name) !remaining
  done;
  {
    chosen = List.rev !chosen;
    covered = Hashtbl.length covered;
    total_covered;
    universe = Lazy.force universe_size;
  }

let render s =
  Printf.sprintf
    "%d tests suffice for all %d covered partitions (of %d in the domain):\n  %s"
    (List.length s.chosen) s.total_covered s.universe
    (String.concat " " s.chosen)
