module Stats = Iocov_util.Stats

let log_freqs frequencies = Array.map Stats.log10_freq frequencies

let tcd ~frequencies ~target =
  let n = Array.length frequencies in
  if n = 0 || n <> Array.length target then invalid_arg "Tcd.tcd: length mismatch";
  Array.iter (fun t -> if t <= 0.0 then invalid_arg "Tcd.tcd: non-positive target") target;
  Stats.rmsd (log_freqs frequencies) (Array.map log10 target)

let tcd_uniform ~frequencies ~target =
  tcd ~frequencies ~target:(Array.make (Array.length frequencies) target)

let linear_rmsd ~frequencies ~target =
  let n = Array.length frequencies in
  if n = 0 || n <> Array.length target then invalid_arg "Tcd.linear_rmsd: length mismatch";
  Stats.rmsd (Array.map float_of_int frequencies) target

let sweep ~frequencies ~targets =
  List.map (fun t -> (t, tcd_uniform ~frequencies ~target:t)) targets

let log_targets ~lo_log10 ~hi_log10 ~per_decade =
  if per_decade <= 0 || hi_log10 < lo_log10 then invalid_arg "Tcd.log_targets";
  let steps = int_of_float (ceil ((hi_log10 -. lo_log10) *. float_of_int per_decade)) in
  List.init (steps + 1) (fun i ->
      10.0 ** (lo_log10 +. (float_of_int i /. float_of_int per_decade)))

let crossover ~f1 ~f2 ~lo ~hi =
  if lo <= 0.0 || hi <= lo then invalid_arg "Tcd.crossover";
  let diff target = tcd_uniform ~frequencies:f1 ~target -. tcd_uniform ~frequencies:f2 ~target in
  let d_lo = diff lo and d_hi = diff hi in
  if d_lo = 0.0 then Some lo
  else if d_hi = 0.0 then Some hi
  else if d_lo *. d_hi > 0.0 then None
  else begin
    let rec bisect log_a log_b d_a =
      if log_b -. log_a < 1e-3 then Some (10.0 ** ((log_a +. log_b) /. 2.0))
      else begin
        let log_m = (log_a +. log_b) /. 2.0 in
        let d_m = diff (10.0 ** log_m) in
        if d_m = 0.0 then Some (10.0 ** log_m)
        else if d_a *. d_m < 0.0 then bisect log_a log_m d_a
        else bisect log_m log_b d_m
      end
    in
    bisect (log10 lo) (log10 hi) d_lo
  end
