(** Coverage-preserving test-suite reduction.

    The paper argues IOCov's metrics let developers "design test cases
    that avoid under- or over-testing".  This module is the concrete
    tool: given per-test coverage, pick a small subset of tests whose
    union still covers every partition the full suite covers — the
    classic greedy set-cover approximation (ln n of optimal).

    The result makes over-testing tangible: if 40 of 1000 tests already
    reach every partition, the other 960 only add {e frequency}, not
    {e coverage} — exactly the paper's distinction between testing more
    and testing new things. *)

type item = {
  name : string;
  coverage : Coverage.t;
}

type selection = {
  chosen : string list;          (** selected test names, in pick order *)
  covered : int;                 (** partitions covered by the selection *)
  total_covered : int;           (** partitions covered by the full suite *)
  universe : int;                (** partitions in the whole domain *)
}

val partition_set : Coverage.t -> (string, unit) Hashtbl.t
(** The set of covered partition keys (inputs and error outputs), each as
    a stable string key. *)

val greedy : item list -> selection
(** Greedy set cover: repeatedly pick the test adding the most
    still-uncovered partitions until no test adds any.  Ties break toward
    the earliest item, so the result is deterministic. *)

val render : selection -> string
