(** Coverage snapshot serialization.

    A trace can be gigabytes; its coverage is a few hundred counters.
    Snapshots store exactly the counters, so coverage can be archived per
    run, diffed across tool versions, and merged across machines — the
    workflow the paper implies when it compares suites "measured once,
    analyzed many ways".

    The format is a line-oriented text file:

    {v
    iocov-coverage v1
    calls 123456
    variant open 100
    input open.flags O_RDONLY 7924
    input write.count 2^12 868
    output open OK 5630
    output open ENOENT 97
    flagset O_RDONLY|O_CREAT 41
    v}

    Unknown line kinds are rejected (no silent drift across versions). *)

val save : out_channel -> Coverage.t -> unit

val save_file : string -> Coverage.t -> unit

val load : in_channel -> (Coverage.t, string) result
(** Fails with a located message on the first malformed line. *)

val load_file : string -> (Coverage.t, string) result

val to_string : Coverage.t -> string

val of_string : string -> (Coverage.t, string) result

val equal : Coverage.t -> Coverage.t -> bool
(** Structural equality over every counter a snapshot stores — the
    round-trip invariant ([equal c (of_string (to_string c))]). *)
