open Iocov_syscall

let restrict flag sets =
  List.filter (fun (mask, _) -> Open_flags.has mask flag) sets

let by_flag_count sets =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (mask, freq) ->
      let n = Open_flags.count_flags mask in
      let r =
        match Hashtbl.find_opt tbl n with
        | Some r -> r
        | None ->
          let r = ref 0 in
          Hashtbl.add tbl n r;
          r
      in
      r := !r + freq)
    sets;
  Hashtbl.fold (fun n r acc -> (n, !r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let percent_by_flag_count ~max_n sets =
  let counts = by_flag_count sets in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
  List.init max_n (fun i ->
      let n = i + 1 in
      let c = match List.assoc_opt n counts with Some c -> c | None -> 0 in
      Iocov_util.Stats.percentage c total)

let max_flags_combined sets =
  List.fold_left (fun acc (mask, _) -> max acc (Open_flags.count_flags mask)) 0 sets

let distinct_sets sets = List.length sets

let flag_pairs =
  (* unordered pairs in domain order, diagonal excluded *)
  let rec go acc = function
    | [] -> List.rev acc
    | f :: rest -> go (List.rev_append (List.map (fun g -> (f, g)) rest) acc) rest
  in
  go [] Open_flags.all

let pair_matrix sets =
  List.map
    (fun (f, g) ->
      let count =
        List.fold_left
          (fun acc (mask, freq) ->
            if Open_flags.has mask f && Open_flags.has mask g then acc + freq else acc)
          0 sets
      in
      ((f, g), count))
    flag_pairs

let untested_pairs sets =
  List.filter_map (fun (pair, count) -> if count = 0 then Some pair else None)
    (pair_matrix sets)
