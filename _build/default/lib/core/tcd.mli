(** Test Coverage Deviation (Section 4, "Application: syscall test
    adequacy").

    For a coverage array [F] over [N] partitions and a target array [T],

    {v TCD_T = sqrt( 1/N * sum_i (log F_i - log T_i)^2 ) v}

    with logarithms base 10 and [log 0 := 0] (an untested partition sits
    where a once-tested one does; the log transform is what downplays
    over-testing relative to under-testing).  Lower is better.  The
    target encodes the developer's intent: the paper sweeps uniform
    targets (Figure 5) and leaves non-uniform targets — e.g. weighting
    persistence-related partitions — as future work, implemented here. *)

val tcd : frequencies:int array -> target:float array -> float
(** General (non-uniform-target) form.  Arrays must have equal positive
    length; target entries must be positive. *)

val tcd_uniform : frequencies:int array -> target:float -> float
(** The paper's Figure 5 form: every [T_i] equal. *)

val linear_rmsd : frequencies:int array -> target:float array -> float
(** Ablation: the same deviation in the {e linear} domain (no log).
    Used by the tcd-ablation bench to show why the paper works in
    orders of magnitude. *)

val sweep :
  frequencies:int array -> targets:float list -> (float * float) list
(** [(target, tcd)] for each uniform target. *)

val log_targets : lo_log10:float -> hi_log10:float -> per_decade:int -> float list
(** Log-spaced sweep targets, e.g. Figure 5's x-axis (1 to 10^7). *)

val crossover :
  f1:int array -> f2:int array -> lo:float -> hi:float -> float option
(** The uniform target at which the better of the two coverage arrays
    flips — Figure 5's "below ~5,237 CrashMonkey wins, above it
    xfstests".  [None] if the sign of [tcd f1 - tcd f2] is the same at
    both endpoints.  Bisection on the log of the target, 1e-3 relative
    precision. *)
