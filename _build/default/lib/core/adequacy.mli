(** Under-/over-testing classification.

    The paper introduces under-testing ("the partition gets too little
    testing if at all; this can miss bugs") and over-testing ("partitions
    are excessively tested; this could waste resources").  This module
    operationalizes the notions against a target frequency [T] with a
    tolerance factor [theta]: a partition is under-tested below
    [T/theta], over-tested above [T*theta], adequate in between, and
    untested at zero. *)

type verdict =
  | Untested
  | Under_tested
  | Adequate
  | Over_tested

val verdict_name : verdict -> string

val classify : frequency:int -> target:float -> theta:float -> verdict
(** [theta] must be >= 1; [target] positive. *)

val input_report :
  Coverage.t -> Arg_class.arg -> target:float -> theta:float ->
  (Partition.t * int * verdict) list
(** Verdict per partition of the argument's whole domain. *)

val output_report :
  Coverage.t -> Iocov_syscall.Model.base -> target:float -> theta:float ->
  (Partition.output * int * verdict) list

type summary = { untested : int; under : int; adequate : int; over : int }

val summarize : ('a * int * verdict) list -> summary

val rebalance_hint :
  ('a -> string) -> ('a * int * verdict) list -> string list
(** Developer-facing suggestions: which partitions to add tests for and
    which to divert effort from — "this information can be readily used
    to improve these testing tools" (Section 6). *)
