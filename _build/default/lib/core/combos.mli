(** Flag-combination analysis (Table 1) and the bit-combination coverage
    extension.

    Table 1 reports, for each test suite, the percentage of [open] calls
    that combined 1..6 flags, over all calls and restricted to calls that
    included the most popular flag ([O_RDONLY]).  The extension measures
    exact flag-{e set} coverage — which of the astronomically many
    combinations were exercised at all, and which pairs never co-occur —
    the paper's "enhance our metrics to support bit combinations". *)

open Iocov_syscall

val restrict : Open_flags.flag -> (Open_flags.t * int) list -> (Open_flags.t * int) list
(** Keep only flag sets containing the given flag. *)

val by_flag_count : (Open_flags.t * int) list -> (int * int) list
(** Total frequency per number-of-flags-combined, ascending by count.
    A bare [O_RDONLY] open counts as one flag "used alone". *)

val percent_by_flag_count : max_n:int -> (Open_flags.t * int) list -> float list
(** Table 1 row: percentages for 1..[max_n] flags (entries beyond the
    largest observed combination are 0). *)

val max_flags_combined : (Open_flags.t * int) list -> int
(** Largest number of flags any call combined (0 for no calls). *)

val distinct_sets : (Open_flags.t * int) list -> int
(** Number of distinct exact flag sets exercised. *)

val pair_matrix : (Open_flags.t * int) list -> ((Open_flags.flag * Open_flags.flag) * int) list
(** Co-occurrence count for every unordered flag pair (diagonal
    excluded), in domain order. *)

val untested_pairs : (Open_flags.t * int) list -> (Open_flags.flag * Open_flags.flag) list
(** Flag pairs never exercised together — candidate new test cases. *)
