(* Crash-consistency semantics on the modeled file system: what fsync
   does and does not persist, and how CrashMonkey-style oracles observe
   it.

   Run with:  dune exec examples/crash_consistency.exe *)

open Iocov_syscall
module Fs = Iocov_vfs.Fs

let show fs label path =
  match Fs.stat fs path with
  | Ok st -> Printf.printf "  %-28s %s exists, size %d\n" label path st.Fs.st_size
  | Error e -> Printf.printf "  %-28s %s missing (%s)\n" label path (Errno.to_string e)

let create_and_write fs path =
  match
    Fs.exec fs (Model.open_ ~mode:0o644 ~flags:Open_flags.(of_flags [ O_RDWR; O_CREAT ]) path)
  with
  | Model.Ret fd ->
    ignore (Fs.exec fs (Model.write ~fd ~count:8192 ()));
    fd
  | Model.Err e -> failwith (Errno.to_string e)

let () =
  let fs = Fs.create () in
  ignore (Fs.exec fs (Model.mkdir ~mode:0o755 "/data"));
  ignore (Fs.exec_aux fs Fs.Sync);

  (* Three files, three durability disciplines. *)
  let fd_nothing = create_and_write fs "/data/no_sync" in
  let fd_file = create_and_write fs "/data/fsync_file" in
  let fd_both = create_and_write fs "/data/fsync_file_and_dir" in

  ignore (Fs.exec_aux fs (Fs.Fsync fd_file));
  ignore (Fs.exec_aux fs (Fs.Fsync fd_both));
  (match Fs.exec fs (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY; O_DIRECTORY ]) "/data") with
   | Model.Ret dfd ->
     ignore (Fs.exec_aux fs (Fs.Fsync dfd));
     ignore (Fs.exec fs (Model.close dfd))
   | Model.Err _ -> ());
  ignore (Fs.exec fs (Model.close fd_nothing));
  ignore (Fs.exec fs (Model.close fd_file));
  ignore (Fs.exec fs (Model.close fd_both));

  print_endline "before the crash:";
  show fs "(no persistence)" "/data/no_sync";
  show fs "(fsync file only)" "/data/fsync_file";
  show fs "(fsync file + dir)" "/data/fsync_file_and_dir";

  ignore (Fs.exec_aux fs Fs.Crash);

  print_endline "after power-cut and recovery:";
  show fs "(no persistence)" "/data/no_sync";
  show fs "(fsync file only)" "/data/fsync_file";
  show fs "(fsync file + dir)" "/data/fsync_file_and_dir";

  print_endline
    "\nNote: fsync of the file alone persisted the inode, but whether its\n\
     NAME survives depends on the directory — the bug family CrashMonkey\n\
     was built to catch.  (Here the dir fsync covered both files' entries,\n\
     as both were created before the directory was synced.)"
