(* Compare CrashMonkey and xfstests the way the paper's evaluation does:
   run both simulated suites, then print every figure and table of
   Section 4 at a reduced scale.

   Run with:  dune exec examples/compare_testers.exe -- [scale]  *)

module Runner = Iocov_suites.Runner
module Report = Iocov_core.Report
module Tcd = Iocov_core.Tcd

let () =
  let scale = try float_of_string Sys.argv.(1) with _ -> 0.25 in
  Printf.printf "running CrashMonkey and xfstests simulators (scale %.2f)...\n%!" scale;
  let cm, xf = Runner.run_both ~scale () in
  Printf.printf "CrashMonkey: %d workloads, %s records, %.1fs; xfstests: %d tests, %s records, %.1fs\n\n"
    cm.Runner.workloads
    (Iocov_util.Ascii.si_count cm.Runner.events_total)
    cm.Runner.elapsed_s xf.Runner.workloads
    (Iocov_util.Ascii.si_count xf.Runner.events_total)
    xf.Runner.elapsed_s;
  let name_a = "CrashMonkey" and name_b = "xfstests" in
  let cov_a = cm.Runner.coverage and cov_b = xf.Runner.coverage in
  print_endline (Report.figure2 ~name_a ~cov_a ~name_b ~cov_b);
  print_endline (Report.table1 ~name_a ~cov_a ~name_b ~cov_b);
  print_endline (Report.figure3 ~name_a ~cov_a ~name_b ~cov_b);
  print_endline (Report.figure4 ~name_a ~cov_a ~name_b ~cov_b);
  print_endline
    (Report.figure5 ~name_a ~cov_a ~name_b ~cov_b
       ~targets:(Tcd.log_targets ~lo_log10:0.0 ~hi_log10:7.0 ~per_decade:1));
  print_endline "";
  print_endline (Report.untested_summary ~name:"CrashMonkey" cov_a);
  print_endline (Report.untested_summary ~name:"xfstests" cov_b)
