examples/fuzzer_and_syz.mli:
