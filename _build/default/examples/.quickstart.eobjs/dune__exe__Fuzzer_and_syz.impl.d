examples/fuzzer_and_syz.ml: Iocov_core Iocov_suites Iocov_syscall Iocov_trace List Printf
