examples/differential_hunt.ml: Iocov_bugstudy Iocov_vfs List Printf
