examples/tcd_tuning.mli:
