examples/compare_testers.mli:
