examples/differential_hunt.mli:
