examples/compare_testers.ml: Array Iocov_core Iocov_suites Iocov_util Printf Sys
