examples/crash_consistency.ml: Errno Iocov_syscall Iocov_vfs Model Open_flags Printf
