examples/crash_consistency.mli:
