examples/quickstart.mli:
