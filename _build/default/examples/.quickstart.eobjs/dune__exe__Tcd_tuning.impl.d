examples/tcd_tuning.ml: Array Iocov_core Iocov_suites Iocov_syscall List Open_flags Printf
