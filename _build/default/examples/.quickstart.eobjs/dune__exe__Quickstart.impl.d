examples/quickstart.ml: Iocov_core Iocov_syscall Iocov_trace Iocov_vfs Model Open_flags Whence
