(* Quickstart: trace a small hand-written workload and measure its
   input/output coverage.

   Run with:  dune exec examples/quickstart.exe *)

open Iocov_syscall
module Fs = Iocov_vfs.Fs
module Tracer = Iocov_trace.Tracer
module Filter = Iocov_trace.Filter
module Event = Iocov_trace.Event
module Coverage = Iocov_core.Coverage
module Report = Iocov_core.Report

let () =
  (* 1. An in-memory file system and a tracer around it. *)
  let fs = Fs.create () in
  let tracer = Tracer.create ~comm:"quickstart" fs in

  (* 2. IOCov: a mount-point filter feeding the coverage accumulator. *)
  let coverage = Coverage.create () in
  let filter = Filter.mount_point "/mnt/test" in
  Tracer.on_event tracer
    (Filter.sink filter (fun e ->
         match e.Event.payload with
         | Event.Tracked call -> Coverage.observe coverage call e.Event.outcome
         | Event.Aux _ -> ()));

  (* 3. A small workload: create, write, read back, probe some errors. *)
  let exec call = ignore (Tracer.exec tracer call) in
  exec (Model.mkdir ~mode:0o755 "/mnt");
  exec (Model.mkdir ~mode:0o755 "/mnt/test");
  exec (Model.open_ ~mode:0o644 ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT ]) "/mnt/test/hello");
  exec (Model.write ~fd:3 ~count:4096 ());
  exec (Model.write ~fd:3 ~count:0 ());  (* the boundary everyone forgets *)
  exec (Model.close 3);
  exec (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY ]) "/mnt/test/hello");
  exec (Model.read ~fd:3 ~count:1024 ());
  exec (Model.lseek ~fd:3 ~offset:0 ~whence:Whence.SEEK_END);
  exec (Model.close 3);
  exec (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY ]) "/mnt/test/nope");
  exec (Model.setxattr ~target:(Model.Path "/mnt/test/hello") ~name:"user.k" ~size:16 ());
  exec (Model.getxattr ~target:(Model.Path "/mnt/test/hello") ~name:"user.k" ~size:64 ());
  (* ... and something outside the mount, which the filter drops *)
  exec (Model.open_ ~mode:0o644 ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT ]) "/tmp-scratch");

  (* 4. What did we cover, and what did we miss? *)
  print_endline (Report.suite_summary ~name:"quickstart" coverage);
  print_endline (Report.untested_summary ~name:"quickstart" coverage)
