(* The future-work extensions in one example:

   1. Parse a Syzkaller program (syzlang declarative descriptions) and
      measure its input coverage — the paper's planned path for applying
      IOCov to fuzzers.
   2. Run the same mutation-based fuzzer twice, once with path-style
      outcome-novelty feedback and once guided by IOCov partition
      novelty, and compare how much of the partitioned input space each
      reaches.

   Run with:  dune exec examples/fuzzer_and_syz.exe *)

module Syzlang = Iocov_trace.Syzlang
module Fuzzer = Iocov_suites.Fuzzer
module Coverage = Iocov_core.Coverage
module Report = Iocov_core.Report

let syz_program =
  {|r0 = openat(0xffffffffffffff9c, &(0x7f0000000000)='./file0\x00', 0x42, 0x1ff)
pwrite64(r0, &(0x7f0000000040)="deadbeefcafe", 0x6, 0x0)
r1 = socket(0x2, 0x1, 0x0)
lseek(r0, 0x1000, 0x0)
ftruncate(r0, 0x2000)
fgetxattr(r0, &(0x7f0000000600)='user.x\x00', &(0x7f0000000680)=""/64, 0x40)
mkdir(&(0x7f0000000400)='./dir0\x00', 0x1c0)
close(r0)|}

let () =
  print_endline "=== 1. Syzkaller program through IOCov ===";
  (match Syzlang.parse_program syz_program with
   | Error msg -> Printf.eprintf "parse error: %s\n" msg
   | Ok program ->
     Printf.printf "%d modeled calls parsed, %d foreign syscalls skipped:\n"
       (List.length program.Syzlang.calls)
       (List.length program.Syzlang.skipped);
     List.iter
       (fun call -> print_endline ("  " ^ Iocov_syscall.Model.call_to_string call))
       program.Syzlang.calls;
     let coverage = Coverage.create () in
     List.iter (Coverage.observe_input_only coverage) program.Syzlang.calls;
     print_newline ();
     print_endline (Report.untested_summary ~name:"syzkaller program" coverage));

  print_endline "\n=== 2. Fuzzing: outcome-novelty vs IOCov-guided feedback ===";
  let budget = 1500 in
  Printf.printf "same mutator, same seed, %d executions per feedback signal...\n%!" budget;
  let outcome, partition = Fuzzer.compare_feedbacks ~budget () in
  Printf.printf "%-36s %4d partitions covered (corpus %d)\n"
    (Fuzzer.feedback_name outcome.Fuzzer.feedback)
    (Fuzzer.covered_partitions outcome.Fuzzer.coverage)
    outcome.Fuzzer.corpus_size;
  Printf.printf "%-36s %4d partitions covered (corpus %d)\n"
    (Fuzzer.feedback_name partition.Fuzzer.feedback)
    (Fuzzer.covered_partitions partition.Fuzzer.coverage)
    partition.Fuzzer.corpus_size;
  print_endline
    "\nThe partition-novelty signal retains boundary stepping stones (sizes\n\
     0, 2^k-1, 2^k+1, rare flags) that outcome novelty discards as 'the\n\
     same path' — so the guided fuzzer keeps finding new input classes\n\
     after the path-style one has saturated."
