(* Non-uniform TCD targets — the paper's future-work extension.

   "Crash-consistency testing heavily exploits persistence operations ...
   Thus, developers might want to set a larger target T_i for
   persistency-related input or output partitions."  (Section 4)

   This example builds two target arrays for open-flag coverage — a
   uniform one and one that weights the persistence flags (O_SYNC,
   O_DSYNC, O_DIRECT) 100x — and shows how the ranking of the two suites
   changes under each.

   Run with:  dune exec examples/tcd_tuning.exe *)

open Iocov_syscall
module Runner = Iocov_suites.Runner
module Coverage = Iocov_core.Coverage
module Arg_class = Iocov_core.Arg_class
module Partition = Iocov_core.Partition
module Tcd = Iocov_core.Tcd

let persistence_flags = Open_flags.[ O_SYNC; O_DSYNC; O_DIRECT ]

let () =
  print_endline "running both suites at a reduced scale...";
  let cm, xf = Runner.run_both ~scale:0.25 () in
  let domain = Partition.domain Arg_class.Open_flags_arg in
  let freqs cov =
    Array.of_list
      (List.map (fun p -> Coverage.input_count cov Arg_class.Open_flags_arg p) domain)
  in
  let f_cm = freqs cm.Runner.coverage and f_xf = freqs xf.Runner.coverage in
  let base_target = 1000.0 in
  let uniform = Array.make (List.length domain) base_target in
  let persistence_weighted =
    Array.of_list
      (List.map
         (fun p ->
           match p with
           | Partition.P_flag f when List.mem f persistence_flags -> base_target *. 100.0
           | _ -> base_target)
         domain)
  in
  let report name target =
    Printf.printf "%-22s CrashMonkey TCD %.3f   xfstests TCD %.3f\n" name
      (Tcd.tcd ~frequencies:f_cm ~target)
      (Tcd.tcd ~frequencies:f_xf ~target)
  in
  Printf.printf "\nTCD for open flags under two developer intents (base T = %.0f):\n" base_target;
  report "uniform target" uniform;
  report "persistence-weighted" persistence_weighted;
  print_endline
    "\nA crash-consistency-focused target rewards CrashMonkey's heavy use of\n\
     O_SYNC/O_DIRECT; a uniform target rewards xfstests' breadth.  The\n\
     metric is the same — only the developer's target array changed."
