(* Hunt injected file-system bugs with the IOCov-guided differential
   tester, and contrast it with probes that merely re-execute the same
   code paths (code-coverage-style testing).

   Every injected fault models a bug class from the paper's Section 2
   study — including Figure 1's "setxattr at exactly the maximum size"
   Ext4 bug, which full line/function/branch coverage failed to expose.

   Run with:  dune exec examples/differential_hunt.exe *)

module Diff = Iocov_bugstudy.Differential
module Fault = Iocov_vfs.Fault
module Dataset = Iocov_bugstudy.Dataset
module Bug = Iocov_bugstudy.Bug

let () =
  print_endline "Bug archetypes under hunt (from the Section 2 dataset):";
  List.iter
    (fun (b : Bug.t) ->
      match b.Bug.fault with
      | Some fault ->
        Printf.printf "  %-28s <- %s (%s)\n" (Fault.to_string fault) b.Bug.id b.Bug.title
      | None -> ())
    Dataset.injectable;
  print_newline ();
  let reports = Diff.campaign () in
  print_endline (Diff.render reports);
  Printf.printf "\ndetection rate: code-coverage-style %.0f%%, IOCov-guided %.0f%%\n"
    (100.0 *. Diff.detection_rate reports Diff.Code_coverage_style)
    (100.0 *. Diff.detection_rate reports Diff.Iocov_guided);
  print_endline
    "\nThe code-coverage-style probes execute the same file-system code as\n\
     the guided ones — the difference is only which INPUT partitions they\n\
     exercise, which is the paper's thesis in one table."
