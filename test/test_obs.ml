(* Tests for the self-observability layer: metrics registry, spans with
   a fake clock, structured logging, and the exporters. *)

open Iocov_obs
module Log2 = Iocov_util.Log2

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- registry --- *)

let test_counter_roundtrip () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "iocov_test_total" ~help:"h" in
  check_int "starts at zero" 0 (Metrics.Counter.value c);
  Metrics.Counter.incr c;
  Metrics.Counter.add c 41;
  check_int "accumulates" 42 (Metrics.Counter.value c);
  (* find-or-create: same name+labels answers the same handle *)
  let c' = Metrics.counter reg "iocov_test_total" in
  Metrics.Counter.incr c';
  check_int "shared handle" 43 (Metrics.Counter.value c)

let test_counter_negative_rejected () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "iocov_test_total" in
  Alcotest.check_raises "negative add"
    (Invalid_argument "Metrics.Counter.add: negative increment")
    (fun () -> Metrics.Counter.add c (-1))

let test_labels_distinguish () =
  let reg = Metrics.create () in
  let a = Metrics.counter reg "iocov_test_total" ~labels:[ ("k", "a") ] in
  let b = Metrics.counter reg "iocov_test_total" ~labels:[ ("k", "b") ] in
  Metrics.Counter.incr a;
  check_int "label b untouched" 0 (Metrics.Counter.value b);
  check_int "label a counted" 1 (Metrics.Counter.value a)

let test_kind_clash_rejected () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "iocov_test_total");
  check_bool "gauge under a counter name raises" true
    (match Metrics.gauge reg "iocov_test_total" with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_name_validation () =
  let reg = Metrics.create () in
  check_bool "uppercase rejected" true
    (match Metrics.counter reg "Bad" with
     | _ -> false
     | exception Invalid_argument _ -> true);
  check_bool "leading digit rejected" true
    (match Metrics.counter reg "9lives" with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_gauge () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "iocov_test_size" in
  Metrics.Gauge.set g 7;
  Metrics.Gauge.add g (-3);
  Metrics.Gauge.incr g;
  check_int "gauge arithmetic" 5 (Metrics.Gauge.value g)

let test_snapshot_sorted_and_stable () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "iocov_b_total");
  ignore (Metrics.counter reg "iocov_a_total");
  ignore (Metrics.counter reg "iocov_a_total" ~labels:[ ("x", "2") ]);
  ignore (Metrics.counter reg "iocov_a_total" ~labels:[ ("x", "1") ]);
  let names =
    List.map
      (fun (m : Metrics.metric) ->
        m.Metrics.name ^ String.concat "" (List.map snd m.Metrics.labels))
      (Metrics.snapshot reg)
  in
  Alcotest.(check (list string))
    "sorted by name then labels"
    [ "iocov_a_total"; "iocov_a_total1"; "iocov_a_total2"; "iocov_b_total" ]
    names

let test_reset_keeps_handles () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "iocov_test_total" in
  let h = Metrics.histogram reg "iocov_test_ns" in
  Metrics.Counter.add c 5;
  Metrics.Histogram.observe h 1024;
  Metrics.reset reg;
  check_int "counter zeroed" 0 (Metrics.Counter.value c);
  check_int "histogram emptied" 0 (Metrics.Histogram.count h);
  Metrics.Counter.incr c;
  check_int "handle still live" 1 (Metrics.Counter.value c)

let test_is_timing () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "iocov_test_total");
  ignore (Metrics.histogram reg "iocov_test_latency_ns");
  let timing, steady =
    List.partition Metrics.is_timing (Metrics.snapshot reg)
  in
  check_int "one timing metric" 1 (List.length timing);
  check_int "one steady metric" 1 (List.length steady);
  check_string "the _ns one" "iocov_test_latency_ns"
    (List.hd timing).Metrics.name

(* --- histogram bucket boundaries --- *)

let test_histogram_pow2_boundaries () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "iocov_test_sizes" in
  (* 2^k - 1, 2^k, 2^k + 1 straddle a bucket edge: 2^k-1 belongs to
     bucket k-1, both 2^k and 2^k+1 to bucket k *)
  List.iter (Metrics.Histogram.observe h) [ 1023; 1024; 1025 ];
  Alcotest.(check (list (pair int int)))
    "boundary split"
    [ (9, 1); (10, 2) ]
    (List.filter_map
       (fun (b, n) ->
         match b with Log2.Pow2 k -> Some (k, n) | _ -> None)
       (Metrics.Histogram.buckets h))

let test_histogram_zero_and_negative_buckets () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "iocov_test_sizes" in
  List.iter (Metrics.Histogram.observe h) [ 0; 0; -5; 1 ];
  let count b = List.assoc_opt b (Metrics.Histogram.buckets h) in
  Alcotest.(check (option int)) "dedicated zero bucket" (Some 2) (count Log2.Zero);
  Alcotest.(check (option int)) "negative bucket" (Some 1) (count Log2.Negative);
  Alcotest.(check (option int)) "one lands in 2^0" (Some 1) (count (Log2.Pow2 0));
  check_int "count totals" 4 (Metrics.Histogram.count h);
  check_int "sum is signed" (-4) (Metrics.Histogram.sum h)

(* --- spans under a fake clock --- *)

let with_fake_clock steps f =
  let times = ref steps in
  Clock.set (fun () ->
      match !times with
      | [] -> invalid_arg "fake clock exhausted"
      | t :: rest ->
        times := rest;
        t);
  Fun.protect f ~finally:Clock.reset

let test_span_nesting_fake_clock () =
  let reg = Metrics.create () in
  Span.reset ();
  (* outer opens at 0.0, inner runs [1.0, 3.0], outer closes at 10.0 *)
  with_fake_clock [ 0.0; 1.0; 3.0; 10.0 ] (fun () ->
      Span.with_ ~registry:reg ~name:"outer" (fun () ->
          Span.with_ ~registry:reg ~name:"inner" (fun () -> ())));
  match Span.roots () with
  | [ root ] ->
    check_string "root name" "outer" root.Span.name;
    Alcotest.(check (float 1e-9)) "outer duration" 10.0 root.Span.duration_s;
    (match root.Span.children with
     | [ child ] ->
       check_string "child name" "inner" child.Span.name;
       Alcotest.(check (float 1e-9)) "inner duration" 2.0 child.Span.duration_s
     | l -> Alcotest.failf "expected one child, got %d" (List.length l))
  | l -> Alcotest.failf "expected one root, got %d" (List.length l)

let test_span_closes_on_exception () =
  let reg = Metrics.create () in
  Span.reset ();
  with_fake_clock [ 0.0; 1.0 ] (fun () ->
      match Span.with_ ~registry:reg ~name:"boom" (fun () -> failwith "x") with
      | () -> Alcotest.fail "should have raised"
      | exception Failure _ -> ());
  check_int "span still recorded" 1 (List.length (Span.roots ()))

let test_span_timed_duration_agrees () =
  let reg = Metrics.create () in
  Span.reset ();
  with_fake_clock [ 0.0; 2.5 ] (fun () ->
      let v, node = Span.timed ~registry:reg ~name:"work" (fun () -> 42) in
      check_int "value passed through" 42 v;
      Alcotest.(check (float 1e-9)) "measured" 2.5 node.Span.duration_s;
      (* the same node is the completed root — one source of truth *)
      Alcotest.(check (float 1e-9)) "root agrees" 2.5
        (List.hd (Span.roots ())).Span.duration_s)

let test_span_flatten_paths () =
  let reg = Metrics.create () in
  Span.reset ();
  with_fake_clock [ 0.0; 1.0; 2.0; 3.0; 4.0; 5.0 ] (fun () ->
      Span.with_ ~registry:reg ~name:"a" (fun () ->
          Span.with_ ~registry:reg ~name:"b" (fun () -> ());
          Span.with_ ~registry:reg ~name:"c" (fun () -> ())));
  let root = List.hd (Span.roots ()) in
  Alcotest.(check (list (list string)))
    "preorder paths"
    [ [ "a" ]; [ "a"; "b" ]; [ "a"; "c" ] ]
    (List.map fst (Span.flatten root))

(* Parallel shards complete their root spans in scheduler order; the
   exported tree must not depend on it.  [roots] sorts by (name,
   duration), so any completion order renders identically. *)
let test_span_roots_sorted () =
  let reg = Metrics.create () in
  Span.reset ();
  (* completion order: b(2.0), a(5.0), a(1.0) — deliberately unsorted *)
  with_fake_clock [ 0.0; 2.0; 0.0; 5.0; 0.0; 1.0 ] (fun () ->
      Span.with_ ~registry:reg ~name:"b" (fun () -> ());
      Span.with_ ~registry:reg ~name:"a" (fun () -> ());
      Span.with_ ~registry:reg ~name:"a" (fun () -> ()));
  Alcotest.(check (list (pair string (float 1e-9))))
    "roots sorted by (name, duration)"
    [ ("a", 1.0); ("a", 5.0); ("b", 2.0) ]
    (List.map (fun n -> (n.Span.name, n.Span.duration_s)) (Span.roots ()))

(* --- logging --- *)

let capture_lines f =
  let lines = ref [] in
  Log.set_sink (fun line -> lines := line :: !lines);
  let saved_level = Log.level () in
  Fun.protect
    (fun () ->
      Log.reset_seq ();
      f ();
      List.rev !lines)
    ~finally:(fun () ->
      Log.set_level saved_level;
      Log.set_format Log.Text;
      Log.set_channel stderr)

let test_log_levels_filter () =
  let lines =
    capture_lines (fun () ->
        Log.set_level Log.Warn;
        Log.debug "hidden";
        Log.info "hidden too";
        Log.warn "shown";
        Log.error "also shown")
  in
  check_int "two lines pass Warn" 2 (List.length lines)

let test_log_text_format () =
  let lines =
    capture_lines (fun () ->
        Log.set_level Log.Info;
        Log.info "hello" ~fields:[ ("n", Log.int 3); ("s", Log.str "x y") ])
  in
  match lines with
  | [ line ] ->
    check_string "deterministic text line" "#1 [info] hello n=3 s=\"x y\"" line
  | l -> Alcotest.failf "expected one line, got %d" (List.length l)

let test_log_json_format () =
  let lines =
    capture_lines (fun () ->
        Log.set_level Log.Info;
        Log.set_format Log.Json;
        Log.info "he\"llo" ~fields:[ ("ok", Log.bool true) ])
  in
  match lines with
  | [ line ] ->
    check_string "json line"
      "{\"seq\":1,\"level\":\"info\",\"msg\":\"he\\\"llo\",\"ok\":true}" line
  | l -> Alcotest.failf "expected one line, got %d" (List.length l)

(* --- exporters --- *)

let sample_registry () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "iocov_test_total" ~help:"a counter" ~labels:[ ("k", "v") ] in
  Metrics.Counter.add c 3;
  let g = Metrics.gauge reg "iocov_test_size" ~help:"a gauge" in
  Metrics.Gauge.set g 9;
  let h = Metrics.histogram reg "iocov_test_bytes" ~help:"a histogram" in
  List.iter (Metrics.Histogram.observe h) [ 0; 3; 1024 ];
  reg

let test_prometheus_deterministic () =
  let a = Export.to_prometheus (sample_registry ()) in
  let b = Export.to_prometheus (sample_registry ()) in
  check_string "identical renders" a b

let test_prometheus_shape () =
  let text = Export.to_prometheus (sample_registry ()) in
  let has fragment =
    let fl = String.length fragment and tl = String.length text in
    let rec go i = i + fl <= tl && (String.sub text i fl = fragment || go (i + 1)) in
    check_bool fragment true (go 0)
  in
  has "# TYPE iocov_test_total counter";
  has "iocov_test_total{k=\"v\"} 3";
  has "# TYPE iocov_test_size gauge";
  has "iocov_test_size 9";
  has "# TYPE iocov_test_bytes histogram";
  (* cumulative buckets: 0 -> 1, 2^2 hi=3 -> 2, 2^10 hi=1023... then hi of
     1024's bucket, +Inf, sum and count *)
  has "iocov_test_bytes_bucket{le=\"0\"} 1";
  has "iocov_test_bytes_bucket{le=\"3\"} 2";
  has "iocov_test_bytes_bucket{le=\"2047\"} 3";
  has "iocov_test_bytes_bucket{le=\"+Inf\"} 3";
  has "iocov_test_bytes_sum 1027";
  has "iocov_test_bytes_count 3"

let test_json_parse_stable () =
  let json = Export.registry_report ~spans:[] (sample_registry ()) in
  check_string "same render twice" json
    (Export.registry_report ~spans:[] (sample_registry ()));
  (* structural spot checks, keeping the test parser-free *)
  let has fragment =
    let fl = String.length fragment and tl = String.length json in
    let rec go i = i + fl <= tl && (String.sub json i fl = fragment || go (i + 1)) in
    check_bool fragment true (go 0)
  in
  has "{\"metrics\":[";
  has "\"name\":\"iocov_test_total\"";
  has "\"labels\":{\"k\":\"v\"}";
  has "\"value\":3";
  has "\"spans\":[]"

(* Prometheus exposition-format escaping (the spec is exact): label
   values escape only backslash, double-quote, and newline; HELP text
   escapes only backslash and newline.  Tabs and non-ASCII pass through
   raw — JSON-style escapes would be a format violation. *)
let test_prometheus_label_escaping () =
  let reg = Metrics.create () in
  Metrics.Counter.incr
    (Metrics.counter reg "iocov_test_total" ~labels:[ ("path", "a\\b\"c\nd\te") ]);
  let text = Export.to_prometheus reg in
  let has fragment =
    let fl = String.length fragment and tl = String.length text in
    let rec go i = i + fl <= tl && (String.sub text i fl = fragment || go (i + 1)) in
    check_bool (String.escaped fragment) true (go 0)
  in
  (* backslash and double-quote gain a backslash, newline becomes a
     two-character escape, the tab passes through raw *)
  has "path=\"a\\\\b\\\"c\\nd\te\"";
  check_bool "no JSON tab escape" true
    (not
       (let frag = "\\t" and tl = String.length text in
        let fl = String.length frag in
        let rec go i = i + fl <= tl && (String.sub text i fl = frag || go (i + 1)) in
        go 0))

let test_prometheus_help_escaping () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "iocov_test_total" ~help:"line one\nline two \\ \"quoted\"");
  let text = Export.to_prometheus reg in
  let has fragment =
    let fl = String.length fragment and tl = String.length text in
    let rec go i = i + fl <= tl && (String.sub text i fl = fragment || go (i + 1)) in
    check_bool (String.escaped fragment) true (go 0)
  in
  (* newline -> \n, backslash -> \\, quotes raw in HELP *)
  has "# HELP iocov_test_total line one\\nline two \\\\ \"quoted\"\n"

let test_span_json () =
  let node =
    { Span.name = "a"; duration_s = 1.5; children = [ { Span.name = "b"; duration_s = 0.25; children = [] } ] }
  in
  check_string "span tree json"
    "{\"name\":\"a\",\"duration_s\":1.500000000,\"children\":[{\"name\":\"b\",\"duration_s\":0.250000000,\"children\":[]}]}"
    (Export.span_to_json node)

(* --- end-to-end determinism of the instrumented pipeline --- *)

let test_pipeline_counters_deterministic () =
  let run () =
    Metrics.reset Metrics.default;
    Span.reset ();
    let r = Iocov_suites.Runner.run ~seed:3 ~scale:0.02 Iocov_suites.Runner.Ltp in
    let steady =
      List.filter (fun m -> not (Metrics.is_timing m)) (Metrics.snapshot Metrics.default)
    in
    (r.Iocov_suites.Runner.workloads, List.map (fun m -> (m.Metrics.name, m.Metrics.labels, m.Metrics.sample)) steady)
  in
  let w1, s1 = run () in
  let w2, s2 = run () in
  check_int "same workloads" w1 w2;
  check_bool "identical non-timing snapshots" true (s1 = s2);
  check_bool "snapshot is non-trivial" true (List.length s1 > 10)

(* The observe paths hoist metering out of the per-update loops and
   credit each observation as one batch; the batched totals must equal
   what per-update increments would have produced — and the dense
   backend (unmetered shards + [meter_counts] after conversion) must
   credit exactly the same amounts. *)
let test_coverage_metering_batched_exact () =
  let open Iocov_syscall in
  let module Coverage = Iocov_core.Coverage in
  let module Partition = Iocov_core.Partition in
  let calls_c = Metrics.counter Metrics.default "iocov_coverage_calls_total" in
  let upd kind =
    Metrics.counter Metrics.default "iocov_coverage_updates_total"
      ~labels:[ ("table", kind) ]
  in
  let read () =
    ( Metrics.Counter.value calls_c,
      Metrics.Counter.value (upd "variant"),
      Metrics.Counter.value (upd "input"),
      Metrics.Counter.value (upd "output"),
      Metrics.Counter.value (upd "flag_set") )
  in
  let stream =
    [ (Model.open_ ~flags:(Open_flags.of_flags Open_flags.[ O_RDWR; O_CREAT ])
         ~mode:0o644 "/mnt/test/a", Model.Ret 3);
      (Model.open_ ~flags:(Open_flags.of_flags Open_flags.[ O_RDONLY ]) "/mnt/test/b",
       Model.Err Errno.ENOENT);
      (Model.read ~fd:3 ~count:4096 (), Model.Ret 4096);
      (Model.write ~variant:Model.Sys_pwrite64 ~offset:8192 ~fd:3 ~count:512 (),
       Model.Ret 512);
      (Model.lseek ~fd:3 ~offset:(-10) ~whence:Whence.SEEK_CUR, Model.Ret 0);
      (Model.chmod ~target:(Model.Path "/mnt/test/a") ~mode:0 (), Model.Ret 0);
      (Model.close 3, Model.Ret 0) ]
  in
  let input_updates =
    List.fold_left
      (fun acc (c, _) -> acc + List.length (Partition.of_call c))
      0 stream
  in
  let opens =
    List.length
      (List.filter
         (fun (c, _) -> match c with Model.Open_call _ -> true | _ -> false)
         stream)
  in
  let n = List.length stream in
  (* per-event metered path, plus one input-only observation *)
  let c0, v0, i0, o0, f0 = read () in
  let cov = Coverage.create () in
  List.iter (fun (c, o) -> Coverage.observe cov c o) stream;
  Coverage.observe_input_only cov (Model.read ~fd:4 ~count:0 ());
  let c1, v1, i1, o1, f1 = read () in
  check_int "calls delta" (n + 1) (c1 - c0);
  check_int "variant delta" (n + 1) (v1 - v0);
  check_int "input delta" (input_updates + 1) (i1 - i0);
  check_int "output delta" n (o1 - o0);
  check_int "flag-set delta" opens (f1 - f0);
  (* dense path: unmetered observe, one meter_counts after conversion *)
  let d = Coverage.Dense.create () in
  List.iter (fun (c, o) -> Coverage.Dense.observe d c o) stream;
  Coverage.Dense.observe_input_only d (Model.read ~fd:4 ~count:0 ());
  Coverage.meter_counts (Coverage.Dense.to_reference d);
  let c2, v2, i2, o2, f2 = read () in
  check_int "dense calls delta" (c1 - c0) (c2 - c1);
  check_int "dense variant delta" (v1 - v0) (v2 - v1);
  check_int "dense input delta" (i1 - i0) (i2 - i1);
  check_int "dense output delta" (o1 - o0) (o2 - o1);
  check_int "dense flag-set delta" (f1 - f0) (f2 - f1)

let test_runner_elapsed_is_root_span () =
  Metrics.reset Metrics.default;
  Span.reset ();
  let r = Iocov_suites.Runner.run ~seed:3 ~scale:0.02 Iocov_suites.Runner.Ltp in
  match Span.roots () with
  | [ root ] ->
    check_string "root span name" "runner/LTP" root.Span.name;
    Alcotest.(check (float 1e-12))
      "elapsed_s is the root duration" root.Span.duration_s
      r.Iocov_suites.Runner.elapsed_s
  | l -> Alcotest.failf "expected one root, got %d" (List.length l)

let suites =
  [ ( "obs.metrics",
      [ Alcotest.test_case "counter roundtrip" `Quick test_counter_roundtrip;
        Alcotest.test_case "negative add rejected" `Quick test_counter_negative_rejected;
        Alcotest.test_case "labels distinguish" `Quick test_labels_distinguish;
        Alcotest.test_case "kind clash rejected" `Quick test_kind_clash_rejected;
        Alcotest.test_case "name validation" `Quick test_name_validation;
        Alcotest.test_case "gauge" `Quick test_gauge;
        Alcotest.test_case "snapshot order" `Quick test_snapshot_sorted_and_stable;
        Alcotest.test_case "reset keeps handles" `Quick test_reset_keeps_handles;
        Alcotest.test_case "is_timing" `Quick test_is_timing;
        Alcotest.test_case "pow2 boundaries" `Quick test_histogram_pow2_boundaries;
        Alcotest.test_case "zero and negative buckets" `Quick
          test_histogram_zero_and_negative_buckets ] );
    ( "obs.span",
      [ Alcotest.test_case "nesting under a fake clock" `Quick test_span_nesting_fake_clock;
        Alcotest.test_case "closes on exception" `Quick test_span_closes_on_exception;
        Alcotest.test_case "timed agrees with roots" `Quick test_span_timed_duration_agrees;
        Alcotest.test_case "flatten paths" `Quick test_span_flatten_paths;
        Alcotest.test_case "roots sorted" `Quick test_span_roots_sorted ] );
    ( "obs.log",
      [ Alcotest.test_case "level filter" `Quick test_log_levels_filter;
        Alcotest.test_case "text format" `Quick test_log_text_format;
        Alcotest.test_case "json format" `Quick test_log_json_format ] );
    ( "obs.export",
      [ Alcotest.test_case "prometheus deterministic" `Quick test_prometheus_deterministic;
        Alcotest.test_case "prometheus shape" `Quick test_prometheus_shape;
        Alcotest.test_case "json parse-stable" `Quick test_json_parse_stable;
        Alcotest.test_case "label escaping" `Quick test_prometheus_label_escaping;
        Alcotest.test_case "help escaping" `Quick test_prometheus_help_escaping;
        Alcotest.test_case "span json" `Quick test_span_json ] );
    ( "obs.pipeline",
      [ Alcotest.test_case "non-timing metrics deterministic" `Quick
          test_pipeline_counters_deterministic;
        Alcotest.test_case "batched metering is exact" `Quick
          test_coverage_metering_batched_exact;
        Alcotest.test_case "elapsed_s is the root span" `Quick
          test_runner_elapsed_is_root_span ] ) ]
