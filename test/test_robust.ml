(* Tests for the fault-tolerant pipeline (DESIGN.md §12): CRC framing
   and resync in the v2 binary format, exact loss accounting, error
   budgets, worker supervision (retry / abandon / shard death), and
   checkpointed replay with byte-identical resume. *)

module Anomaly = Iocov_util.Anomaly
module Crc32 = Iocov_util.Crc32
module Event = Iocov_trace.Event
module Filter = Iocov_trace.Filter
module Format_io = Iocov_trace.Format_io
module Binary_io = Iocov_trace.Binary_io
module Coverage = Iocov_core.Coverage
module Snapshot = Iocov_core.Snapshot
module Pool = Iocov_par.Pool
module Checkpoint = Iocov_par.Checkpoint
module Replay = Iocov_par.Replay

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let synth_events = Test_par.synth_events
let sequential_coverage = Test_par.sequential_coverage
let with_temp_file = Test_par.with_temp_file

let filter = Filter.mount_point "/mnt/test"

let write_binary ?version ?chapter ?frame path events =
  let oc = open_out_bin path in
  let w = Binary_io.writer ?version ?chapter ?frame oc in
  List.iter (Binary_io.sink w) events;
  Binary_io.flush w;
  close_out oc

(* byte offset of every frame, recovered with a clean strict read *)
let frame_offsets path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
      match Binary_io.open_stream ic with
      | Error msg -> Alcotest.failf "open_stream: %s" msg
      | Ok st ->
        let offs = ref [] in
        let continue = ref true in
        while !continue do
          let off = pos_in ic in
          match Binary_io.read_batch st ~max:1 with
          | Error msg -> Alcotest.failf "read_batch: %s" msg
          | Ok b when Array.length b = 0 -> continue := false
          | Ok _ -> offs := off :: !offs
        done;
        Array.of_list (List.rev !offs))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

let write_file path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let flip_bytes path offsets =
  let b = read_file path in
  List.iter
    (fun off -> Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40)))
    offsets;
  write_file path b

let truncate_file path len =
  let b = read_file path in
  write_file path (Bytes.sub b 0 len)

(* drain a whole stream in the given mode; Ok (events, completeness) *)
let read_all ?(mode = Binary_io.Strict) path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
      match Binary_io.open_stream ~mode ic with
      | Error msg -> Error msg
      | Ok st ->
        let rec go acc =
          match Binary_io.read_batch st ~max:256 with
          | Error msg -> Error msg
          | Ok b when Array.length b = 0 ->
            Ok (List.rev acc, Binary_io.completeness st)
          | Ok b -> go (List.rev_append (Array.to_list b) acc)
        in
        go [])

let ignore_seq (e : Event.t) = { e with Event.seq = 0 }

(* --- CRC-32 --- *)

let test_crc32_vectors () =
  (* the catalogue check value for reflected CRC-32/ISO-HDLC *)
  check_int "check value" 0xCBF43926 (Crc32.string "123456789");
  check_int "empty" 0 (Crc32.string "");
  let s = "the quick brown fox jumps over the lazy dog" in
  let split = 17 in
  let incremental =
    Crc32.update (Crc32.update 0 s ~pos:0 ~len:split) s ~pos:split
      ~len:(String.length s - split)
  in
  check_int "incremental = whole" (Crc32.string s) incremental

(* --- error budgets --- *)

let test_budget_parse () =
  check_bool "none" true (Anomaly.budget_of_string "none" = Ok Anomaly.Unlimited);
  check_bool "count" true (Anomaly.budget_of_string "64" = Ok (Anomaly.Max_records 64));
  check_bool "percent" true
    (match Anomaly.budget_of_string "0.5%" with
     | Ok (Anomaly.Max_fraction f) -> Float.abs (f -. 0.005) < 1e-9
     | _ -> false);
  check_bool "negative rejected" true (Result.is_error (Anomaly.budget_of_string "-3"));
  check_bool "garbage rejected" true (Result.is_error (Anomaly.budget_of_string "abc"));
  check_bool "over 100% rejected" true (Result.is_error (Anomaly.budget_of_string "150%"))

let test_budget_allows () =
  check_bool "absolute trips online" false
    (Anomaly.budget_allows (Anomaly.Max_records 2) ~bad:3 ~total:10 ~final:false);
  check_bool "absolute within" true
    (Anomaly.budget_allows (Anomaly.Max_records 3) ~bad:3 ~total:10 ~final:false);
  (* fractional budgets need the denominator: never trip before EOF *)
  check_bool "fraction deferred" true
    (Anomaly.budget_allows (Anomaly.Max_fraction 0.01) ~bad:50 ~total:60 ~final:false);
  check_bool "fraction trips at EOF" false
    (Anomaly.budget_allows (Anomaly.Max_fraction 0.01) ~bad:50 ~total:60 ~final:true);
  check_bool "fraction within at EOF" true
    (Anomaly.budget_allows (Anomaly.Max_fraction 0.5) ~bad:3 ~total:100 ~final:true)

let test_completeness_algebra () =
  let clean = Anomaly.clean ~events_read:10 in
  check_bool "clean is clean" true (Anomaly.is_clean clean);
  let dirty =
    { clean with Anomaly.records_skipped = 2; anomalies = [ Anomaly.v Anomaly.Corrupt_record "x" ] }
  in
  check_bool "dirty is not clean" false (Anomaly.is_clean dirty);
  let m = Anomaly.merge clean dirty in
  check_int "events sum" 20 m.Anomaly.events_read;
  check_int "skips sum" 2 m.Anomaly.records_skipped;
  check_int "anomalies concatenated" 1 (List.length m.Anomaly.anomalies)

(* --- v2 format round-trips --- *)

let test_v2_round_trip_chapters () =
  let events = synth_events ~seed:40 500 in
  with_temp_file (fun path ->
      write_binary ~version:2 ~chapter:16 path events;
      match read_all path with
      | Error msg -> Alcotest.failf "clean v2 read failed: %s" msg
      | Ok (got, c) ->
        check_int "count" 500 (List.length got);
        check_bool "records identical" true
          (List.for_all2 (fun a b -> ignore_seq a = ignore_seq b) events got);
        check_bool "ledger clean" true (Anomaly.is_clean c))

let test_v1_still_readable () =
  let events = synth_events ~seed:41 300 in
  with_temp_file (fun path ->
      write_binary ~version:1 path events;
      match read_all path with
      | Error msg -> Alcotest.failf "v1 read failed: %s" msg
      | Ok (got, c) ->
        check_int "count" 300 (List.length got);
        check_bool "records identical" true
          (List.for_all2 (fun a b -> ignore_seq a = ignore_seq b) events got);
        check_bool "ledger clean" true (Anomaly.is_clean c))

(* --- corruption recovery --- *)

let test_strict_reports_first_offset () =
  let events = synth_events ~seed:42 200 in
  with_temp_file (fun path ->
      write_binary ~version:2 ~chapter:16 path events;
      let offs = frame_offsets path in
      let target = offs.(100) + 7 in
      flip_bytes path [ target ];
      match read_all path with
      | Ok _ -> Alcotest.fail "strict read of a corrupt trace succeeded"
      | Error msg ->
        let reported = Scanf.sscanf msg "offset %d:" Fun.id in
        check_bool "offset points at the damaged frame" true
          (reported >= offs.(100) && reported <= target))

let test_lenient_exact_single_flip () =
  let events = synth_events ~seed:43 300 in
  with_temp_file (fun path ->
      write_binary ~version:2 ~chapter:16 path events;
      let offs = frame_offsets path in
      (* CRC byte of a mid-trace frame: exactly one record damaged *)
      flip_bytes path [ offs.(150) + 4 ];
      match read_all ~mode:(Binary_io.Lenient Anomaly.Unlimited) path with
      | Error msg -> Alcotest.failf "lenient read failed: %s" msg
      | Ok (got, c) ->
        check_int "read + skipped = written" 300
          (List.length got + c.Anomaly.records_skipped);
        check_int "exactly one record lost" 1 c.Anomaly.records_skipped;
        check_int "one corrupt region" 1 c.Anomaly.corrupt_regions;
        check_bool "not truncated" false c.Anomaly.truncated)

let test_lenient_exact_adjacent_frames () =
  (* two consecutive damaged frames collapse into one resync region;
     the in-chapter index gap still yields the exact per-record count.
     Mid-chapter frames (85, 86 with chapter 16) so no table
     introductions for later records are lost with them. *)
  let events = synth_events ~seed:44 300 in
  with_temp_file (fun path ->
      write_binary ~version:2 ~chapter:16 path events;
      let offs = frame_offsets path in
      flip_bytes path [ offs.(85) + 4; offs.(86) + 4 ];
      match read_all ~mode:(Binary_io.Lenient Anomaly.Unlimited) path with
      | Error msg -> Alcotest.failf "lenient read failed: %s" msg
      | Ok (got, c) ->
        check_int "exactly two records lost" 2 c.Anomaly.records_skipped;
        check_int "read + skipped = written" 300
          (List.length got + c.Anomaly.records_skipped))

let test_lenient_lost_reference_cascade () =
  (* damaging the frame that introduces the shared comm string orphans
     the rest of its chapter; the next chapter restarts the table *)
  let events = synth_events ~seed:45 64 in
  with_temp_file (fun path ->
      write_binary ~version:2 ~chapter:8 path events;
      let offs = frame_offsets path in
      flip_bytes path [ offs.(8) + 7 ];
      match read_all ~mode:(Binary_io.Lenient Anomaly.Unlimited) path with
      | Error msg -> Alcotest.failf "lenient read failed: %s" msg
      | Ok (got, c) ->
        check_int "read + skipped = written" 64
          (List.length got + c.Anomaly.records_skipped);
        check_bool "cascade bounded by the chapter" true (c.Anomaly.records_skipped <= 8);
        check_bool "lost references were classified" true
          (List.exists
             (fun a -> a.Anomaly.kind = Anomaly.Lost_reference)
             c.Anomaly.anomalies))

let test_lenient_truncated_tail () =
  let events = synth_events ~seed:46 200 in
  with_temp_file (fun path ->
      write_binary ~version:2 ~chapter:16 path events;
      let size = Bytes.length (read_file path) in
      truncate_file path (size - 5);
      (match read_all ~mode:(Binary_io.Lenient Anomaly.Unlimited) path with
       | Error msg -> Alcotest.failf "lenient read failed: %s" msg
       | Ok (got, c) ->
         check_int "all but the torn record" 199 (List.length got);
         check_bool "flagged truncated" true c.Anomaly.truncated);
      match read_all path with
      | Ok _ -> Alcotest.fail "strict read of a truncated trace succeeded"
      | Error _ -> ())

let test_fuzz_bit_flips_never_raise () =
  let n = 400 in
  let chapter = 16 in
  let events = synth_events ~seed:47 n in
  with_temp_file (fun clean_path ->
      write_binary ~version:2 ~chapter clean_path events;
      let clean = read_file clean_path in
      let size = Bytes.length clean in
      (* past the magic and the chapter-size varint *)
      let header_end = 7 in
      for seed = 0 to 19 do
        let rng = Iocov_util.Prng.create ~seed:(1000 + seed) in
        let flips = 1 + Iocov_util.Prng.int rng 4 in
        let offsets =
          List.init flips (fun _ ->
              header_end + Iocov_util.Prng.int rng (size - header_end))
        in
        with_temp_file (fun path ->
            write_file path clean;
            flip_bytes path offsets;
            match read_all ~mode:(Binary_io.Lenient Anomaly.Unlimited) path with
            | Error msg -> Alcotest.failf "seed %d: lenient errored: %s" seed msg
            | exception e ->
              Alcotest.failf "seed %d: lenient raised %s" seed (Printexc.to_string e)
            | Ok (got, c) ->
              let read = List.length got in
              if not c.Anomaly.truncated then
                check_int
                  (Printf.sprintf "seed %d: read + skipped = written" seed)
                  n
                  (read + c.Anomaly.records_skipped);
              (* each flip can lose at most its chapter (lost refs)
                 plus the damaged frame's neighbours *)
              check_bool
                (Printf.sprintf "seed %d: bounded blast radius" seed)
                true
                (read >= n - (flips * (chapter + 2))))
      done)

let test_budget_enforced () =
  let events = synth_events ~seed:48 300 in
  with_temp_file (fun path ->
      write_binary ~version:2 ~chapter:16 path events;
      let offs = frame_offsets path in
      flip_bytes path [ offs.(50) + 4; offs.(150) + 4 ];
      (* zero tolerance: fails on the first skip, online *)
      (match read_all ~mode:(Binary_io.Lenient (Anomaly.Max_records 0)) path with
       | Ok _ -> Alcotest.fail "zero budget accepted corruption"
       | Error msg ->
         check_bool "names the budget" true
           (String.length msg >= 6 && String.sub msg 0 6 = "error "));
      (* roomy absolute budget passes *)
      (match read_all ~mode:(Binary_io.Lenient (Anomaly.Max_records 10)) path with
       | Error msg -> Alcotest.failf "budget 10 rejected 2 bad records: %s" msg
       | Ok (_, c) -> check_int "both skips counted" 2 c.Anomaly.records_skipped);
      (* 2 of 300 is ~0.67%: a 0.1% budget trips at EOF, a 5% one allows *)
      (match read_all ~mode:(Binary_io.Lenient (Anomaly.Max_fraction 0.001)) path with
       | Ok _ -> Alcotest.fail "0.1% budget accepted 0.67% corruption"
       | Error _ -> ());
      match read_all ~mode:(Binary_io.Lenient (Anomaly.Max_fraction 0.05)) path with
      | Error msg -> Alcotest.failf "5%% budget rejected 0.67%% corruption: %s" msg
      | Ok _ -> ())

(* --- v3 format: multi-record frames --- *)

module Model = Iocov_syscall.Model

(* Every string introduced in each chapter's first frame, so damaging
   any later frame loses exactly that frame's records — no reference
   cascade to muddy the ledger. *)
let uniform_events n =
  List.init n (fun seq ->
      {
        Event.seq;
        timestamp_ns = seq * 17;
        pid = 42;
        comm = "bench";
        payload = Event.Tracked (Model.close (seq mod 512));
        outcome = Model.Ret 0;
        path_hint = Some "/mnt/test/f";
      })

let test_v3_round_trip_frames () =
  List.iter
    (fun (n, chapter, frame) ->
      let events = synth_events ~seed:60 n in
      with_temp_file (fun path ->
          write_binary ~version:3 ~chapter ~frame path events;
          match read_all path with
          | Error msg ->
            Alcotest.failf "clean v3 read failed (chapter=%d frame=%d): %s" chapter frame msg
          | Ok (got, c) ->
            let label = Printf.sprintf "chapter=%d frame=%d" chapter frame in
            check_int (label ^ " count") n (List.length got);
            check_bool (label ^ " records identical") true
              (List.for_all2 (fun a b -> ignore_seq a = ignore_seq b) events got);
            check_bool (label ^ " ledger clean") true (Anomaly.is_clean c)))
    [ (500, 16, 4);
      (500, 64, 64);
      (* frame larger than the chapter: clamped, frames never span chapters *)
      (100, 1, 8);
      (300, 512, 256);
      (* empty trace: header only, zero frames *)
      (0, 16, 4) ]

let test_v3_frame_flip_exact_ledger () =
  let events = uniform_events 400 in
  with_temp_file (fun path ->
      write_binary ~version:3 ~chapter:64 ~frame:8 path events;
      let offs = frame_offsets path in
      (* offs.(8k) is the k-th frame's start; frame 20 holds records
         160..167, mid-chapter, so its loss is exactly its 8 records *)
      flip_bytes path [ offs.(160) + 4 ];
      (match read_all ~mode:(Binary_io.Lenient Anomaly.Unlimited) path with
       | Error msg -> Alcotest.failf "lenient read failed: %s" msg
       | Ok (got, c) ->
         check_int "whole frame lost, nothing else" 8 c.Anomaly.records_skipped;
         check_int "read + skipped = written" 400
           (List.length got + c.Anomaly.records_skipped);
         check_int "one corrupt region" 1 c.Anomaly.corrupt_regions;
         check_bool "not truncated" false c.Anomaly.truncated);
      match read_all path with
      | Ok _ -> Alcotest.fail "strict read of a corrupt v3 trace succeeded"
      | Error _ -> ())

let test_v3_truncated_tail () =
  (* 100 records, chapter 64, frame 8: the tail frame holds 4 records
     (36 mod 8); tearing its last bytes loses exactly that frame *)
  let events = uniform_events 100 in
  with_temp_file (fun path ->
      write_binary ~version:3 ~chapter:64 ~frame:8 path events;
      let size = Bytes.length (read_file path) in
      truncate_file path (size - 5);
      (match read_all ~mode:(Binary_io.Lenient Anomaly.Unlimited) path with
       | Error msg -> Alcotest.failf "lenient read failed: %s" msg
       | Ok (got, c) ->
         check_int "all but the torn tail frame" 96 (List.length got);
         check_bool "flagged truncated" true c.Anomaly.truncated);
      match read_all path with
      | Ok _ -> Alcotest.fail "strict read of a truncated v3 trace succeeded"
      | Error _ -> ())

let test_v3_oversized_strings () =
  (* strings far beyond the writer scratch and reader arena defaults:
     growth paths on both sides, and the dictionary still shares them *)
  let big = String.make 70_000 'p' in
  let events =
    List.init 20 (fun seq ->
        {
          Event.seq;
          timestamp_ns = seq;
          pid = 1;
          comm = "big";
          payload = Event.Tracked (Model.chdir (Model.Path big));
          outcome = Model.Ret 0;
          path_hint = Some big;
        })
  in
  with_temp_file (fun path ->
      write_binary ~version:3 ~chapter:16 ~frame:4 path events;
      match read_all path with
      | Error msg -> Alcotest.failf "oversized-string read failed: %s" msg
      | Ok (got, c) ->
        check_int "count" 20 (List.length got);
        check_bool "records identical" true
          (List.for_all2 (fun a b -> ignore_seq a = ignore_seq b) events got);
        check_bool "ledger clean" true (Anomaly.is_clean c))

let test_v3_fuzz_bit_flips_never_raise () =
  let n = 400 in
  let chapter = 16 in
  let frame = 4 in
  let events = synth_events ~seed:63 n in
  with_temp_file (fun clean_path ->
      write_binary ~version:3 ~chapter ~frame clean_path events;
      let clean = read_file clean_path in
      let size = Bytes.length clean in
      let header_end = 7 in
      for seed = 0 to 19 do
        let rng = Iocov_util.Prng.create ~seed:(2000 + seed) in
        let flips = 1 + Iocov_util.Prng.int rng 4 in
        let offsets =
          List.init flips (fun _ ->
              header_end + Iocov_util.Prng.int rng (size - header_end))
        in
        with_temp_file (fun path ->
            write_file path clean;
            flip_bytes path offsets;
            match read_all ~mode:(Binary_io.Lenient Anomaly.Unlimited) path with
            | Error msg -> Alcotest.failf "seed %d: lenient errored: %s" seed msg
            | exception e ->
              Alcotest.failf "seed %d: lenient raised %s" seed (Printexc.to_string e)
            | Ok (got, c) ->
              let read = List.length got in
              if not c.Anomaly.truncated then
                check_int
                  (Printf.sprintf "seed %d: read + skipped = written" seed)
                  n
                  (read + c.Anomaly.records_skipped);
              (* a flip loses at most its frame plus the rest of its
                 chapter (orphaned references) *)
              check_bool
                (Printf.sprintf "seed %d: bounded blast radius" seed)
                true
                (read >= n - (flips * (chapter + frame + 2))))
      done)

let test_v3_drain_matches_read_batch () =
  (* the fused decode path (drain_batch) against the materializing one:
     same records, same keep/drop taxonomy, same coverage *)
  let events = synth_events ~seed:64 2_000 in
  let ref_cov, ref_kept = sequential_coverage filter events in
  with_temp_file (fun path ->
      write_binary path events;
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          match Binary_io.open_stream ic with
          | Error msg -> Alcotest.failf "open_stream: %s" msg
          | Ok st ->
            let cov = Coverage.create () in
            let keep_hint h = Filter.matches_hint filter h in
            let produced = ref 0 and kept = ref 0 in
            let no_hint = ref 0 and no_match = ref 0 in
            let continue = ref true in
            while !continue do
              match
                Binary_io.drain_batch st ~keep_hint ~on_call:(Coverage.observe cov)
                  ~max:256 ()
              with
              | Error msg -> Alcotest.failf "drain_batch: %s" msg
              | Ok d ->
                if d.Binary_io.dr_produced = 0 then continue := false
                else begin
                  produced := !produced + d.Binary_io.dr_produced;
                  kept := !kept + d.Binary_io.dr_kept;
                  no_hint := !no_hint + d.Binary_io.dr_no_hint;
                  no_match := !no_match + d.Binary_io.dr_no_match
                end
            done;
            check_int "produced = written" 2_000 !produced;
            check_int "kept = sequential kept" ref_kept !kept;
            check_int "taxonomy accounts for every record" 2_000
              (!kept + !no_hint + !no_match);
            check_string "coverage identical" (Snapshot.to_string ref_cov)
              (Snapshot.to_string cov);
            check_bool "ledger clean" true (Anomaly.is_clean (Binary_io.completeness st))))

(* --- differential: lenient == strict on clean traces --- *)

let test_lenient_strict_identical_on_clean () =
  let events = synth_events ~seed:49 3_000 in
  let ref_cov, ref_kept = sequential_coverage filter events in
  with_temp_file (fun path ->
      write_binary path events;
      List.iter
        (fun jobs ->
          List.iter
            (fun counters ->
              List.iter
                (fun ingest ->
                  let ic = open_in_bin path in
                  let pool = Pool.create ~jobs () in
                  let result =
                    Replay.analyze_channel ~pool ~batch:128 ~counters ~ingest ~filter ic
                  in
                  close_in ic;
                  match result with
                  | Error msg -> Alcotest.failf "replay failed: %s" msg
                  | Ok o ->
                    let label =
                      Printf.sprintf "jobs=%d %s %s" jobs
                        (match counters with Replay.Dense -> "dense" | _ -> "reference")
                        (match ingest with Replay.Strict -> "strict" | _ -> "lenient")
                    in
                    check_string (label ^ " coverage")
                      (Snapshot.to_string ref_cov)
                      (Snapshot.to_string o.Replay.coverage);
                    check_int (label ^ " kept") ref_kept o.Replay.kept;
                    check_bool (label ^ " clean") true
                      (Anomaly.is_clean o.Replay.completeness))
                [ Replay.Strict; Replay.Lenient Anomaly.Unlimited ])
            [ Replay.Dense; Replay.Reference ])
        [ 1; 2; 4 ])

let test_lenient_text_skips_bad_lines () =
  let events = synth_events ~seed:50 200 in
  let ref_cov, ref_kept = sequential_coverage filter events in
  with_temp_file (fun path ->
      Out_channel.with_open_text path (fun oc ->
          List.iteri
            (fun i e ->
              if i = 30 || i = 90 || i = 150 then output_string oc "not a trace line\n";
              Format_io.sink_channel oc e)
            events);
      (* strict: fails with the first offending line *)
      let ic = open_in_bin path in
      let strict = Replay.analyze_channel ~pool:(Pool.create ~jobs:2 ()) ~filter ic in
      close_in ic;
      (match strict with
       | Ok _ -> Alcotest.fail "strict accepted bad text lines"
       | Error msg -> check_string "first bad line" "line 31" (String.sub msg 0 7));
      (* lenient: skips all three, coverage unharmed *)
      let ic = open_in_bin path in
      let lenient =
        Replay.analyze_channel ~pool:(Pool.create ~jobs:2 ())
          ~ingest:(Replay.Lenient Anomaly.Unlimited) ~filter ic
      in
      close_in ic;
      match lenient with
      | Error msg -> Alcotest.failf "lenient text replay failed: %s" msg
      | Ok o ->
        check_int "three lines skipped" 3 o.Replay.completeness.Anomaly.records_skipped;
        check_int "kept unchanged" ref_kept o.Replay.kept;
        check_string "coverage unchanged" (Snapshot.to_string ref_cov)
          (Snapshot.to_string o.Replay.coverage);
        check_bool "parse errors carry line numbers" true
          (List.exists
             (fun a -> a.Anomaly.kind = Anomaly.Parse_error && a.Anomaly.line <> None)
             o.Replay.completeness.Anomaly.anomalies))

(* --- supervision --- *)

let test_transient_fault_is_retried () =
  let events = synth_events ~seed:51 2_000 in
  let reference = Replay.analyze_events ~pool:(Pool.create ~jobs:1 ()) ~filter events in
  List.iter
    (fun jobs ->
      let tripped = Atomic.make false in
      let chaos ~shard:_ ~batch:_ =
        if Atomic.compare_and_set tripped false true then failwith "transient fault"
      in
      let o =
        Replay.analyze_events ~pool:(Pool.create ~jobs ()) ~batch:64 ~chaos ~filter events
      in
      check_string
        (Printf.sprintf "coverage survives the fault at jobs=%d" jobs)
        (Snapshot.to_string reference.Replay.coverage)
        (Snapshot.to_string o.Replay.coverage);
      check_int (Printf.sprintf "events at jobs=%d" jobs) 2_000 o.Replay.events;
      check_bool (Printf.sprintf "retry recorded at jobs=%d" jobs) true
        (o.Replay.completeness.Anomaly.batches_retried >= 1))
    [ 1; 2 ]

let test_persistent_fault_abandons_batch () =
  let events = synth_events ~seed:52 512 in
  let policy = { Pool.max_retries = 1; backoff_unit = 0 } in
  let chaos ~shard:_ ~batch = if batch = 0 then failwith "persistent fault" in
  (* lenient: the first batch is abandoned, the rest analyzed *)
  let o =
    Replay.analyze_events ~pool:(Pool.create ~jobs:1 ()) ~batch:64 ~policy ~chaos
      ~ingest:(Replay.Lenient Anomaly.Unlimited) ~filter events
  in
  check_int "abandoned the first batch" 64
    o.Replay.completeness.Anomaly.events_abandoned;
  check_int "analyzed the rest" 448 o.Replay.events;
  check_bool "abandonment classified" true
    (List.exists
       (fun a -> a.Anomaly.kind = Anomaly.Batch_abandoned)
       o.Replay.completeness.Anomaly.anomalies);
  (* strict: an abandoned batch is fatal *)
  check_bool "strict failed" true
    (match
       Replay.analyze_events ~pool:(Pool.create ~jobs:1 ()) ~batch:64 ~policy ~chaos
         ~filter events
     with
    | _ -> false
    | exception Failure _ -> true)

let test_all_shards_killed () =
  let events = synth_events ~seed:53 1_000 in
  let chaos ~shard:_ ~batch:_ = raise (Pool.Shard_killed "chaos") in
  let o =
    Replay.analyze_events ~pool:(Pool.create ~jobs:2 ()) ~batch:64 ~chaos
      ~ingest:(Replay.Lenient Anomaly.Unlimited) ~filter events
  in
  check_int "both shards died" 2 o.Replay.completeness.Anomaly.shards_failed;
  check_int "nothing analyzed" 0 o.Replay.events;
  (* the producer stops as soon as the channel closes, so events never
     pushed are signalled by [truncated], not counted as abandoned *)
  check_bool "pushed events accounted as lost" true
    (o.Replay.completeness.Anomaly.events_abandoned > 0);
  check_bool "unread remainder flagged" true o.Replay.completeness.Anomaly.truncated;
  check_bool "nothing double-counted" true
    (o.Replay.completeness.Anomaly.events_abandoned <= 1_000);
  check_bool "strict failed" true
    (match
       Replay.analyze_events ~pool:(Pool.create ~jobs:2 ()) ~batch:64 ~chaos ~filter events
     with
    | _ -> false
    | exception Failure _ -> true)

let test_one_shard_killed_survivors_continue () =
  let events = synth_events ~seed:54 2_000 in
  let chaos ~shard ~batch:_ = if shard = 1 then raise (Pool.Shard_killed "chaos") in
  let o =
    Replay.analyze_events ~pool:(Pool.create ~jobs:2 ()) ~batch:32 ~chaos
      ~ingest:(Replay.Lenient Anomaly.Unlimited) ~filter events
  in
  let c = o.Replay.completeness in
  check_bool "at most one shard lost" true (c.Anomaly.shards_failed <= 1);
  check_int "every event read or accounted" 2_000
    (c.Anomaly.events_read + c.Anomaly.events_abandoned);
  check_bool "survivor did most of the work" true (o.Replay.events >= 1_000)

let test_run_supervised () =
  let pool = Pool.create ~jobs:3 () in
  let tripped = Atomic.make false in
  let s =
    Pool.run_supervised pool (fun ~shard ->
        if shard = 1 && Atomic.compare_and_set tripped false true then
          failwith "transient";
        shard * 10)
  in
  check_bool "all shards succeeded" true
    (Array.for_all Option.is_some s.Pool.results);
  check_bool "retry counted" true (s.Pool.retries >= 1);
  check_int "no failures" 0 s.Pool.failed;
  let s2 =
    Pool.run_supervised pool (fun ~shard ->
        if shard = 2 then raise (Pool.Shard_killed "chaos");
        shard)
  in
  check_bool "killed shard yields None" true (s2.Pool.results.(2) = None);
  check_int "one failure" 1 s2.Pool.failed;
  check_bool "others survive" true (s2.Pool.results.(0) = Some 0)

(* --- checkpointed replay --- *)

let test_checkpoint_resume_byte_identical () =
  let events = synth_events ~seed:55 4_000 in
  with_temp_file (fun trace ->
      write_binary trace events;
      let full =
        match Replay.analyze_file ~pool:(Pool.create ~jobs:1 ()) ~filter trace with
        | Ok o -> o
        | Error msg -> Alcotest.failf "full run failed: %s" msg
      in
      with_temp_file (fun ck_path ->
          (* interrupted run: stop at 1500 events, checkpointing as we go *)
          (match
             Replay.analyze_file ~pool:(Pool.create ~jobs:1 ())
               ~checkpoint:{ Replay.ckpt_path = ck_path; ckpt_every = 500 }
               ~limit:1500 ~filter trace
           with
          | Ok o -> check_int "prefix events" 1_500 o.Replay.events
          | Error msg -> Alcotest.failf "interrupted run failed: %s" msg);
          let ck =
            match Checkpoint.load ck_path with
            | Ok ck -> ck
            | Error msg -> Alcotest.failf "checkpoint load failed: %s" msg
          in
          check_int "checkpoint cursor events" 1_500 ck.Checkpoint.events;
          (* resume at different job counts and both counter backends *)
          List.iter
            (fun (jobs, counters) ->
              match
                Replay.analyze_file ~pool:(Pool.create ~jobs ()) ~counters
                  ~resume:(ck_path, ck) ~filter trace
              with
              | Error msg -> Alcotest.failf "resume failed: %s" msg
              | Ok o ->
                let label = Printf.sprintf "resumed jobs=%d" jobs in
                check_int (label ^ " total events") 4_000 o.Replay.events;
                check_string (label ^ " coverage byte-identical")
                  (Snapshot.to_string full.Replay.coverage)
                  (Snapshot.to_string o.Replay.coverage);
                check_bool (label ^ " provenance") true
                  (o.Replay.completeness.Anomaly.resumed_from = Some ck_path))
            [ (1, Replay.Dense); (4, Replay.Dense); (2, Replay.Reference) ]))

let test_checkpoint_rejects_bad_config () =
  let events = synth_events ~seed:56 100 in
  with_temp_file (fun trace ->
      write_binary trace events;
      with_temp_file (fun ck_path ->
          let spec = { Replay.ckpt_path = ck_path; ckpt_every = 500 } in
          check_bool "multi-shard checkpointing rejected" true
            (Result.is_error
               (Replay.analyze_file ~pool:(Pool.create ~jobs:2 ()) ~checkpoint:spec
                  ~filter trace));
          check_bool "non-positive interval rejected" true
            (Result.is_error
               (Replay.analyze_file ~pool:(Pool.create ~jobs:1 ())
                  ~checkpoint:{ spec with Replay.ckpt_every = 0 }
                  ~filter trace))))

let test_checkpoint_load_rejects_garbage () =
  with_temp_file (fun path ->
      write_file path (Bytes.of_string "not a checkpoint at all\n");
      check_bool "garbage is an Error" true (Result.is_error (Checkpoint.load path)));
  (* a torn checkpoint (interrupted write) must also be an Error *)
  let events = synth_events ~seed:57 500 in
  with_temp_file (fun trace ->
      write_binary trace events;
      with_temp_file (fun ck_path ->
          (match
             Replay.analyze_file ~pool:(Pool.create ~jobs:1 ())
               ~checkpoint:{ Replay.ckpt_path = ck_path; ckpt_every = 100 }
               ~filter trace
           with
          | Ok _ -> ()
          | Error msg -> Alcotest.failf "checkpointed run failed: %s" msg);
          let whole = read_file ck_path in
          write_file ck_path (Bytes.sub whole 0 (Bytes.length whole - 30));
          check_bool "torn checkpoint is an Error" true
            (Result.is_error (Checkpoint.load ck_path))))

let test_limit_caps_events () =
  let events = synth_events ~seed:58 1_000 in
  with_temp_file (fun trace ->
      write_binary trace events;
      match
        Replay.analyze_file ~pool:(Pool.create ~jobs:1 ()) ~limit:100 ~filter trace
      with
      | Error msg -> Alcotest.failf "limited run failed: %s" msg
      | Ok o -> check_int "limit honoured" 100 o.Replay.events)

let test_lenient_file_run_with_corruption () =
  (* the end-to-end shape of the acceptance scenario: a mildly corrupt
     trace, a percent budget, a run that completes and accounts *)
  let events = synth_events ~seed:59 2_000 in
  with_temp_file (fun trace ->
      write_binary ~version:2 ~chapter:32 trace events;
      let offs = frame_offsets trace in
      flip_bytes trace [ offs.(400) + 4; offs.(1200) + 4 ];
      match
        Replay.analyze_file ~pool:(Pool.create ~jobs:2 ())
          ~ingest:(Replay.Lenient (Anomaly.Max_fraction 0.01))
          ~filter trace
      with
      | Error msg -> Alcotest.failf "lenient corrupt run failed: %s" msg
      | Ok o ->
        let c = o.Replay.completeness in
        check_int "exact skip count" 2 c.Anomaly.records_skipped;
        check_int "read + skipped = written" 2_000
          (c.Anomaly.events_read + c.Anomaly.records_skipped))

let suites =
  [ ( "robust.format",
      [ Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
        Alcotest.test_case "budget parsing" `Quick test_budget_parse;
        Alcotest.test_case "budget semantics" `Quick test_budget_allows;
        Alcotest.test_case "completeness algebra" `Quick test_completeness_algebra;
        Alcotest.test_case "v2 chapter round-trip" `Quick test_v2_round_trip_chapters;
        Alcotest.test_case "v1 back-compat" `Quick test_v1_still_readable ] );
    ( "robust.corruption",
      [ Alcotest.test_case "strict reports first offset" `Quick
          test_strict_reports_first_offset;
        Alcotest.test_case "single flip, exact ledger" `Quick
          test_lenient_exact_single_flip;
        Alcotest.test_case "adjacent frames, exact ledger" `Quick
          test_lenient_exact_adjacent_frames;
        Alcotest.test_case "lost-reference cascade" `Quick
          test_lenient_lost_reference_cascade;
        Alcotest.test_case "truncated tail" `Quick test_lenient_truncated_tail;
        Alcotest.test_case "bit-flip fuzz never raises" `Quick
          test_fuzz_bit_flips_never_raise;
        Alcotest.test_case "error budgets enforced" `Quick test_budget_enforced ] );
    ( "robust.v3",
      [ Alcotest.test_case "frame round-trips" `Quick test_v3_round_trip_frames;
        Alcotest.test_case "frame flip, exact ledger" `Quick
          test_v3_frame_flip_exact_ledger;
        Alcotest.test_case "truncated tail" `Quick test_v3_truncated_tail;
        Alcotest.test_case "oversized strings" `Quick test_v3_oversized_strings;
        Alcotest.test_case "bit-flip fuzz never raises" `Quick
          test_v3_fuzz_bit_flips_never_raise;
        Alcotest.test_case "drain = read_batch" `Quick
          test_v3_drain_matches_read_batch ] );
    ( "robust.pipeline",
      [ Alcotest.test_case "lenient == strict on clean traces" `Quick
          test_lenient_strict_identical_on_clean;
        Alcotest.test_case "lenient text skips bad lines" `Quick
          test_lenient_text_skips_bad_lines;
        Alcotest.test_case "transient fault retried" `Quick
          test_transient_fault_is_retried;
        Alcotest.test_case "persistent fault abandons batch" `Quick
          test_persistent_fault_abandons_batch;
        Alcotest.test_case "all shards killed" `Quick test_all_shards_killed;
        Alcotest.test_case "one shard killed, survivors continue" `Quick
          test_one_shard_killed_survivors_continue;
        Alcotest.test_case "run_supervised" `Quick test_run_supervised ] );
    ( "robust.checkpoint",
      [ Alcotest.test_case "resume is byte-identical" `Quick
          test_checkpoint_resume_byte_identical;
        Alcotest.test_case "bad config rejected" `Quick
          test_checkpoint_rejects_bad_config;
        Alcotest.test_case "garbage checkpoints rejected" `Quick
          test_checkpoint_load_rejects_garbage;
        Alcotest.test_case "limit caps events" `Quick test_limit_caps_events;
        Alcotest.test_case "corrupt trace, budgeted run completes" `Quick
          test_lenient_file_run_with_corruption ] ) ]
