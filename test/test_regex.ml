(* Tests for the regex engine used by the trace filter. *)

module Engine = Iocov_regex.Engine
module Syntax = Iocov_regex.Syntax
module Prng = Iocov_util.Prng

let check_bool = Alcotest.(check bool)

let matches pattern s = Engine.matches (Engine.compile_exn pattern) s
let search pattern s = Engine.search (Engine.compile_exn pattern) s

let expect_match pattern s () =
  check_bool (Printf.sprintf "%S matches %S" pattern s) true (matches pattern s)

let expect_no_match pattern s () =
  check_bool (Printf.sprintf "%S does not match %S" pattern s) false (matches pattern s)

let expect_search pattern s () =
  check_bool (Printf.sprintf "%S found in %S" pattern s) true (search pattern s)

let expect_no_search pattern s () =
  check_bool (Printf.sprintf "%S not in %S" pattern s) false (search pattern s)

let test_parse_errors () =
  List.iter
    (fun pattern ->
      match Engine.compile pattern with
      | Ok _ -> Alcotest.failf "expected parse failure for %S" pattern
      | Error _ -> ())
    [ "("; ")"; "a{2,1}"; "*a"; "+"; "a\\"; "[abc"; "[z-a]"; "a{,}"; "(a|b))" ]

let test_parse_ok () =
  List.iter
    (fun pattern ->
      match Engine.compile pattern with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "expected %S to parse: %s" pattern msg)
    [ "a"; "a|b"; "(ab)*c"; "[a-z0-9_]+"; "^/mnt/test(/|$)"; "a{3}"; "a{2,}";
      "a{2,5}"; "\\d+\\.\\w*"; "[^/]+"; "" ]

let test_find_leftmost_longest () =
  let t = Engine.compile_exn "ab+" in
  (match Engine.find t "xxabbbyab" with
   | Some (start, stop) ->
     Alcotest.(check (pair int int)) "leftmost longest" (2, 6) (start, stop)
   | None -> Alcotest.fail "expected a match")

let test_find_none () =
  check_bool "no match" true (Engine.find (Engine.compile_exn "zz") "abc" = None)

let test_pattern_accessor () =
  Alcotest.(check string) "source kept" "a+b" (Engine.pattern (Engine.compile_exn "a+b"))

let test_class_mem () =
  let spec = { Syntax.negated = false; ranges = [ ('a', 'f'); ('0', '9') ] } in
  check_bool "in range" true (Syntax.class_mem spec 'c');
  check_bool "in second range" true (Syntax.class_mem spec '7');
  check_bool "out of range" false (Syntax.class_mem spec 'z');
  let neg = { spec with Syntax.negated = true } in
  check_bool "negated" true (Syntax.class_mem neg 'z')

(* Property: any literal string (made regex-safe by escaping) matches itself. *)
let escape_literal s =
  let buf = Buffer.create (String.length s * 2) in
  String.iter
    (fun c ->
      (match c with
       | '.' | '*' | '+' | '?' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '^' | '$' | '\\' ->
         Buffer.add_char buf '\\'
       | _ -> ());
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let literal_self_match_prop =
  QCheck.Test.make ~name:"escaped literal matches itself"
    QCheck.(string_of_size (QCheck.Gen.int_range 0 30))
    (fun s ->
      QCheck.assume (String.for_all (fun c -> c <> '\n') s);
      matches (escape_literal s) s)

let star_absorbs_prop =
  QCheck.Test.make ~name:"a* matches any run of a"
    QCheck.(int_range 0 50)
    (fun n -> matches "a*" (String.make n 'a'))

(* --- literal fast path: extracted facts and agreement with the
   plain scan --- *)

let expect_fast pattern ~anchored ~lead ~required () =
  let f = Engine.fast_path (Engine.compile_exn pattern) in
  check_bool (Printf.sprintf "%S anchored" pattern) anchored f.Engine.anchored;
  Alcotest.(check string) (Printf.sprintf "%S lead" pattern) lead f.Engine.lead;
  Alcotest.(check string) (Printf.sprintf "%S required" pattern) required f.Engine.required

(* A deterministic path corpus that exercises the fast path's edges:
   exact mount hits, sibling near-misses ([/mnt/testx]), truncated
   prefixes, deep subpaths, and strings that contain a required run
   without the lead. *)
let path_corpus =
  let rng = Prng.create ~seed:977 in
  let fixed =
    [ ""; "/"; "/mnt"; "/mnt/"; "/mnt/test"; "/mnt/test/"; "/mnt/testx";
      "/mnt/tes"; "/mnt/test/a/b/c"; "/var/mnt/test/f"; "important";
      "/mnt/important"; "/mnt/x/important/y"; "x/mnt/test"; "catdogfood";
      "catfood"; "/tmp/a.tmp"; "a.tmpx"; ".tmp"; "xyz" ]
  in
  let segments = [| "a"; "bb"; "test"; "testx"; "mnt"; "important"; "x.tmp"; "cat"; "dog" |] in
  let random =
    List.init 400 (fun _ ->
        let depth = 1 + Prng.int rng 4 in
        let parts = List.init depth (fun _ -> Prng.choose rng segments) in
        (if Prng.chance rng 0.7 then "/" else "") ^ String.concat "/" parts)
  in
  fixed @ random

let fast_path_patterns =
  [ "^/mnt/test(/|$)";      (* anchored, required subsumed by lead *)
    "^/mnt/.*important";    (* anchored, separate required run *)
    "^(/mnt/test|/mnt/scratch)(/|$)"; (* anchored, alternation head: no lead *)
    "(cat|dog)food";        (* unanchored, empty lead, required "food" *)
    "\\.tmp$";              (* end anchor only *)
    ".*x";                  (* empty lead, single-char required *)
    "";                     (* empty pattern: everything matches *)
    "x?yz" ]                (* optional head breaks the lead *)

let test_fast_path_agreement () =
  List.iter
    (fun pattern ->
      let t = Engine.compile_exn pattern in
      List.iter
        (fun s ->
          check_bool
            (Printf.sprintf "%S on %S: search = search_scan" pattern s)
            (Engine.search_scan t s) (Engine.search t s))
        path_corpus)
    fast_path_patterns

let anchored_prefix_prop =
  QCheck.Test.make ~name:"^abc search only at start"
    QCheck.(string_of_size (QCheck.Gen.int_range 0 10))
    (fun prefix ->
      QCheck.assume (not (String.length prefix = 0));
      QCheck.assume (prefix.[0] <> 'a');
      not (search "^abc" (prefix ^ "abc")))

let suites =
  [ ( "regex.match",
      [ Alcotest.test_case "literal" `Quick (expect_match "abc" "abc");
        Alcotest.test_case "literal mismatch" `Quick (expect_no_match "abc" "abd");
        Alcotest.test_case "dot" `Quick (expect_match "a.c" "axc");
        Alcotest.test_case "dot needs a char" `Quick (expect_no_match "a.c" "ac");
        Alcotest.test_case "star zero" `Quick (expect_match "ab*c" "ac");
        Alcotest.test_case "star many" `Quick (expect_match "ab*c" "abbbbc");
        Alcotest.test_case "plus needs one" `Quick (expect_no_match "ab+c" "ac");
        Alcotest.test_case "plus many" `Quick (expect_match "ab+c" "abbc");
        Alcotest.test_case "option present" `Quick (expect_match "ab?c" "abc");
        Alcotest.test_case "option absent" `Quick (expect_match "ab?c" "ac");
        Alcotest.test_case "exact repeat" `Quick (expect_match "a{3}" "aaa");
        Alcotest.test_case "exact repeat wrong count" `Quick (expect_no_match "a{3}" "aa");
        Alcotest.test_case "at-least repeat" `Quick (expect_match "a{2,}" "aaaa");
        Alcotest.test_case "bounded repeat" `Quick (expect_match "a{2,3}" "aaa");
        Alcotest.test_case "bounded repeat over" `Quick (expect_no_match "a{2,3}" "aaaa");
        Alcotest.test_case "alternation left" `Quick (expect_match "cat|dog" "cat");
        Alcotest.test_case "alternation right" `Quick (expect_match "cat|dog" "dog");
        Alcotest.test_case "group with star" `Quick (expect_match "(ab)*" "ababab");
        Alcotest.test_case "class" `Quick (expect_match "[abc]+" "cab");
        Alcotest.test_case "class range" `Quick (expect_match "[a-z]+" "hello");
        Alcotest.test_case "negated class" `Quick (expect_match "[^/]+" "hello");
        Alcotest.test_case "negated class rejects" `Quick (expect_no_match "[^/]+" "a/b");
        Alcotest.test_case "digit class" `Quick (expect_match "\\d+" "12345");
        Alcotest.test_case "word class" `Quick (expect_match "\\w+" "ab_9");
        Alcotest.test_case "space class" `Quick (expect_match "a\\sb" "a b");
        Alcotest.test_case "negated digit" `Quick (expect_match "\\D+" "abc");
        Alcotest.test_case "escaped dot" `Quick (expect_no_match "a\\.c" "axc");
        Alcotest.test_case "escaped star" `Quick (expect_match "a\\*" "a*");
        Alcotest.test_case "empty pattern matches empty" `Quick (expect_match "" "");
        Alcotest.test_case "nested groups" `Quick (expect_match "((a|b)c)+" "acbc");
        Alcotest.test_case "zero-width star terminates" `Quick (expect_match "(a?)*b" "aab")
      ] );
    ( "regex.search",
      [ Alcotest.test_case "substring" `Quick (expect_search "test" "/mnt/test/file");
        Alcotest.test_case "anchored start hit" `Quick (expect_search "^/mnt" "/mnt/test");
        Alcotest.test_case "anchored start miss" `Quick (expect_no_search "^/mnt" "/var/mnt");
        Alcotest.test_case "anchored end" `Quick (expect_search "log$" "/var/log");
        Alcotest.test_case "anchored end miss" `Quick (expect_no_search "log$" "/var/log/x");
        Alcotest.test_case "mount point idiom keeps subpath" `Quick
          (expect_search "^/mnt/test(/|$)" "/mnt/test/a/b");
        Alcotest.test_case "mount point idiom keeps exact" `Quick
          (expect_search "^/mnt/test(/|$)" "/mnt/test");
        Alcotest.test_case "mount point idiom rejects sibling" `Quick
          (expect_no_search "^/mnt/test(/|$)" "/mnt/test2/a");
        Alcotest.test_case "search empty pattern" `Quick (expect_search "" "anything") ] );
    ( "regex.engine",
      [ Alcotest.test_case "parse errors rejected" `Quick test_parse_errors;
        Alcotest.test_case "valid patterns accepted" `Quick test_parse_ok;
        Alcotest.test_case "find leftmost-longest" `Quick test_find_leftmost_longest;
        Alcotest.test_case "find none" `Quick test_find_none;
        Alcotest.test_case "pattern accessor" `Quick test_pattern_accessor;
        Alcotest.test_case "class membership" `Quick test_class_mem;
        QCheck_alcotest.to_alcotest literal_self_match_prop;
        QCheck_alcotest.to_alcotest star_absorbs_prop;
        QCheck_alcotest.to_alcotest anchored_prefix_prop ] );
    ( "regex.fast_path",
      [ Alcotest.test_case "mount idiom: lead subsumes required" `Quick
          (expect_fast "^/mnt/test(/|$)" ~anchored:true ~lead:"/mnt/test" ~required:"");
        Alcotest.test_case "separate required run" `Quick
          (expect_fast "^/mnt/.*important" ~anchored:true ~lead:"/mnt/" ~required:"important");
        Alcotest.test_case "alternation head: anchor only" `Quick
          (expect_fast "^(/mnt/test|/mnt/scratch)(/|$)" ~anchored:true ~lead:"" ~required:"");
        Alcotest.test_case "unanchored alternation then literal" `Quick
          (expect_fast "(cat|dog)food" ~anchored:false ~lead:"" ~required:"food");
        Alcotest.test_case "plain literal: lead is whole pattern" `Quick
          (expect_fast "snapshot" ~anchored:false ~lead:"snapshot" ~required:"");
        Alcotest.test_case "end anchor keeps lead" `Quick
          (expect_fast "log$" ~anchored:false ~lead:"log" ~required:"");
        Alcotest.test_case "dot-star head: empty lead" `Quick
          (expect_fast ".*foo" ~anchored:false ~lead:"" ~required:"foo");
        Alcotest.test_case "optional head breaks lead" `Quick
          (expect_fast "x?yz" ~anchored:false ~lead:"" ~required:"yz");
        Alcotest.test_case "empty pattern: no facts" `Quick
          (expect_fast "" ~anchored:false ~lead:"" ~required:"");
        Alcotest.test_case "search = search_scan over path corpus" `Quick
          test_fast_path_agreement ] ) ]
