(* Config-lattice tests: canonical serialization round-trip (QCheck over
   all 17 fields), lattice shape and determinism, the EDQUOT-vs-ENOSPC
   quota ordering regression, the lazy config-sharded coverage matrix,
   checkpointed kill/resume at lattice points, ledger config tagging,
   and hub tenant config pinning. *)

open Iocov_vfs
module Model = Iocov_syscall.Model
module Errno = Iocov_syscall.Errno
module Open_flags = Iocov_syscall.Open_flags
module Plan = Iocov_core.Plan
module Coverage = Iocov_core.Coverage
module Snapshot = Iocov_core.Snapshot
module Runner = Iocov_suites.Runner
module Replay = Iocov_par.Replay
module Pool = Iocov_par.Pool
module Checkpoint = Iocov_par.Checkpoint
module Ledger = Iocov_pipe.Ledger
module Hub = Iocov_serve.Hub

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let point name =
  match Config.point_named name with
  | Some p -> p
  | None -> Alcotest.failf "lattice point %S missing" name

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

(* --- canonical serialization --- *)

let test_round_trip_named () =
  Array.iter
    (fun (p : Config.point) ->
      let text = Config.to_string p.Config.pt_config in
      (match Config.of_string text with
       | Ok c ->
         check_bool (p.Config.pt_name ^ " round-trips") true
           (Config.equal c p.Config.pt_config)
       | Error msg -> Alcotest.failf "%s: %s" p.Config.pt_name msg);
      check_int (p.Config.pt_name ^ " digest width") 8
        (String.length (Config.digest p.Config.pt_config)))
    Config.lattice;
  (* the two quota spellings parse back to what they mean *)
  let def = Config.to_string Config.default in
  check_bool "default has no quota" true
    (Config.default.Config.quota_blocks = None);
  check_bool "quota=none serialized" true (contains def "quota_blocks=none");
  check_bool "quota=512 serialized" true
    (contains (Config.to_string Config.small) "quota_blocks=512")

let test_of_string_rejects () =
  let bad = [
    "";                                           (* no fields *)
    "block_size=4096";                            (* missing fields *)
    Config.to_string Config.default ^ " extra=1"; (* unknown field *)
    Config.to_string Config.default ^ " uid=1";   (* duplicate field *)
  ] in
  List.iter
    (fun text ->
      check_bool "rejected" true (Result.is_error (Config.of_string text)))
    bad

let config_gen =
  let open QCheck.Gen in
  let nat = oneof [ int_range 0 4096; int_range 0 (1 lsl 20); return (1 lsl 40) ] in
  let faults_gen =
    (* any sublist of the fault universe, order preserved *)
    List.fold_right
      (fun f acc ->
        bool >>= fun keep ->
        acc >|= fun fs -> if keep then f :: fs else fs)
      Fault.all (return [])
  in
  nat >>= fun block_size ->
  nat >>= fun total_blocks ->
  nat >>= fun max_file_size ->
  nat >>= fun large_file_threshold ->
  int_range 0 4096 >>= fun max_name_len ->
  int_range 0 65536 >>= fun max_path_len ->
  int_range 0 64 >>= fun max_symlink_depth ->
  int_range 0 65536 >>= fun max_open_files ->
  int_range 0 65536 >>= fun max_system_files ->
  nat >>= fun max_xattr_value ->
  nat >>= fun xattr_space ->
  opt nat >>= fun quota_blocks ->
  bool >>= fun read_only ->
  int_range 0 65535 >>= fun uid ->
  int_range 0 65535 >>= fun gid ->
  faults_gen >>= fun faults ->
  oneofl Config.all_journal_modes >|= fun journal_mode ->
  { Config.block_size; total_blocks; max_file_size; large_file_threshold;
    max_name_len; max_path_len; max_symlink_depth; max_open_files;
    max_system_files; max_xattr_value; xattr_space; quota_blocks; read_only;
    uid; gid; faults; journal_mode }

let round_trip_prop =
  QCheck.Test.make ~name:"to_string/of_string round-trips any config" ~count:500
    (QCheck.make config_gen) (fun c ->
      match Config.of_string (Config.to_string c) with
      | Ok c' -> Config.equal c c'
      | Error _ -> false)

let digest_prop =
  QCheck.Test.make ~name:"digest discriminates canonical forms" ~count:200
    (QCheck.make (QCheck.Gen.pair config_gen config_gen)) (fun (a, b) ->
      if Config.equal a b then Config.digest a = Config.digest b
      else
        (* distinct canonical text implies distinct CRC in practice on
           this generator's range; equal digests with distinct text
           would still be a legal CRC collision, so only check the
           canonical-form contract *)
        Config.to_string a <> Config.to_string b
        || Config.digest a = Config.digest b)

(* --- the lattice --- *)

let test_lattice_shape () =
  check_int "18 points" 18 Config.lattice_count;
  check_int "array agrees" Config.lattice_count (Array.length Config.lattice);
  Array.iteri
    (fun i (p : Config.point) -> check_int ("dense id " ^ p.Config.pt_name) i p.Config.pt_id)
    Config.lattice;
  check_string "point 0 is default" "default" Config.default_point.Config.pt_name;
  check_bool "point 0 carries the default config" true
    (Config.equal Config.default_point.Config.pt_config Config.default);
  (* names are unique and resolvable *)
  Array.iter
    (fun (p : Config.point) ->
      match Config.point_named p.Config.pt_name with
      | Some p' -> check_int (p.Config.pt_name ^ " resolves") p.Config.pt_id p'.Config.pt_id
      | None -> Alcotest.failf "%s does not resolve" p.Config.pt_name)
    Config.lattice;
  check_bool "unknown name" true (Config.point_named "nope" = None);
  check_int "digest width" 8 (String.length Config.lattice_digest)

let test_lattice_print_parse () =
  match Config.parse_lattice (Config.print_lattice ()) with
  | Error msg -> Alcotest.failf "print_lattice does not parse: %s" msg
  | Ok points ->
    check_int "same count" Config.lattice_count (List.length points);
    List.iteri
      (fun i (p : Config.point) ->
        let b = Config.lattice.(i) in
        check_string "name" b.Config.pt_name p.Config.pt_name;
        check_int "id" b.Config.pt_id p.Config.pt_id;
        check_bool "config" true (Config.equal b.Config.pt_config p.Config.pt_config))
      points

let test_points_of_spec () =
  (match Config.points_of_spec "all" with
   | Ok ps -> check_int "all" Config.lattice_count (List.length ps)
   | Error msg -> Alcotest.fail msg);
  (match Config.points_of_spec "tiny-quota,default" with
   | Ok [ a; b ] ->
     check_string "order kept" "tiny-quota" a.Config.pt_name;
     check_string "order kept" "default" b.Config.pt_name
   | Ok _ -> Alcotest.fail "expected two points"
   | Error msg -> Alcotest.fail msg);
  (match Config.points_of_spec "default,default" with
   | Ok ps -> check_int "dedup" 1 (List.length ps)
   | Error msg -> Alcotest.fail msg);
  check_bool "unknown name is an error" true
    (Result.is_error (Config.points_of_spec "default,bogus"))

(* --- the EDQUOT-vs-ENOSPC ordering regression ---

   A quota-bound write by a non-root owner must short-write up to the
   quota limit (EDQUOT only on zero progress), exactly as a
   device-bound write short-writes up to ENOSPC; and when the device is
   the tighter constraint the error must be ENOSPC, never EDQUOT. *)

let creat_rw = Open_flags.of_flags Open_flags.[ O_RDWR; O_CREAT ]

let test_quota_short_write () =
  let config =
    { Config.small with Config.total_blocks = 1024; quota_blocks = Some 4 }
  in
  let fs = Fs.create ~config () in
  ignore (Fs.exec fs (Model.mkdir ~mode:0o755 "/d"));
  ignore (Fs.exec fs (Model.chmod ~target:(Model.Path "/d") ~mode:0o777 ()));
  Fs.set_credentials fs ~uid:1000 ~gid:1000;
  (* creat charges the inode block to uid 1000: 1 of 4 quota blocks *)
  let fd =
    match Fs.exec fs (Model.open_ ~mode:0o644 ~flags:creat_rw "/d/f") with
    | Model.Ret fd -> fd
    | Model.Err e -> Alcotest.failf "creat: %s" (Errno.to_string e)
  in
  let bs = config.Config.block_size in
  (* ask for 8 blocks; only 3 quota blocks remain and the device has
     ~1000 free, so the quota is the binding constraint: short write *)
  (match Fs.exec fs (Model.write ~fd ~count:(8 * bs) ()) with
   | Model.Ret n -> check_int "short write up to the quota" (3 * bs) n
   | Model.Err e ->
     Alcotest.failf "expected a short write, got %s" (Errno.to_string e));
  (* zero room left: now EDQUOT, with plenty of device space *)
  (match Fs.exec fs (Model.write ~fd ~count:bs ()) with
   | Model.Err Errno.EDQUOT -> ()
   | Model.Err e -> Alcotest.failf "expected EDQUOT, got %s" (Errno.to_string e)
   | Model.Ret n -> Alcotest.failf "expected EDQUOT, wrote %d" n);
  ignore (Fs.exec fs (Model.close fd))

let test_device_enospc_before_quota () =
  (* device of 8 blocks, quota of 1000: same workload must fail ENOSPC *)
  let config =
    { Config.small with Config.total_blocks = 8; quota_blocks = Some 1000 }
  in
  let fs = Fs.create ~config () in
  ignore (Fs.exec fs (Model.mkdir ~mode:0o755 "/d"));
  ignore (Fs.exec fs (Model.chmod ~target:(Model.Path "/d") ~mode:0o777 ()));
  Fs.set_credentials fs ~uid:1000 ~gid:1000;
  let fd =
    match Fs.exec fs (Model.open_ ~mode:0o644 ~flags:creat_rw "/d/f") with
    | Model.Ret fd -> fd
    | Model.Err e -> Alcotest.failf "creat: %s" (Errno.to_string e)
  in
  let bs = config.Config.block_size in
  (* root dir + /d + inode = 3 blocks used; 5 remain on the device *)
  (match Fs.exec fs (Model.write ~fd ~count:(16 * bs) ()) with
   | Model.Ret n -> check_int "short write up to the device" (5 * bs) n
   | Model.Err e ->
     Alcotest.failf "expected a short write, got %s" (Errno.to_string e));
  (match Fs.exec fs (Model.write ~fd ~count:bs ()) with
   | Model.Err Errno.ENOSPC -> ()
   | Model.Err e -> Alcotest.failf "expected ENOSPC, got %s" (Errno.to_string e)
   | Model.Ret n -> Alcotest.failf "expected ENOSPC, wrote %d" n);
  ignore (Fs.exec fs (Model.close fd))

(* --- the lazy config-sharded matrix --- *)

let rdonly = Open_flags.of_flags Open_flags.[ O_RDONLY ]

let synth_pairs n =
  List.init n (fun i ->
      if i mod 2 = 0 then
        (Model.open_ ~flags:rdonly ~mode:0 (Printf.sprintf "/f%d" (i mod 7)),
         Model.Ret (i mod 5))
      else (Model.write ~fd:3 ~count:(i * 37 land 0xfff) (), Model.Err Errno.ENOSPC))

let test_matrix_lazy_alloc () =
  let mx = Coverage.Matrix.create ~configs:Config.lattice_count in
  let st0 = Coverage.Matrix.stats mx in
  check_int "nothing allocated at creation" 0 st0.Coverage.Matrix.m_allocated;
  check_int "zero words at creation" 0 st0.Coverage.Matrix.m_words;
  let pairs = synth_pairs 512 in
  let touched = [ 0; 5; 9 ] in
  List.iter
    (fun config_id ->
      List.iter (fun (c, o) -> Coverage.Matrix.observe mx ~config_id c o) pairs)
    touched;
  let st = Coverage.Matrix.stats mx in
  check_int "exactly the touched shards" (List.length touched)
    st.Coverage.Matrix.m_allocated;
  check_int "words = shards * plan" (List.length touched * Plan.total)
    st.Coverage.Matrix.m_words;
  for config_id = 0 to Config.lattice_count - 1 do
    if not (List.mem config_id touched) then
      check_bool
        (Printf.sprintf "config %d unallocated" config_id)
        true
        (Coverage.Matrix.peek mx config_id = None)
  done;
  (* shard 0 must be byte-identical to a plain dense accumulator fed the
     same stream — the matrix is a view, not a new semantics *)
  let d = Coverage.Dense.create () in
  List.iter (fun (c, o) -> Coverage.Dense.observe d c o) pairs;
  (match Coverage.Matrix.to_reference mx with
   | (0, shard0) :: _ ->
     check_string "shard 0 snapshot"
       (Snapshot.to_string (Coverage.Dense.to_reference d))
       (Snapshot.to_string shard0)
   | _ -> Alcotest.fail "shard 0 missing from to_reference");
  (* matrix IDs and per-config cell counts agree *)
  let some_lit = ref false in
  for cell = 0 to Plan.total - 1 do
    let direct = Coverage.Matrix.cell_count mx ~config_id:5 cell in
    let via_id = Coverage.Matrix.matrix_count mx (Plan.Matrix.id ~config_id:5 cell) in
    if direct > 0 then some_lit := true;
    check_int "cell_count = matrix_count" direct via_id
  done;
  check_bool "stream lit something" true !some_lit;
  (* merge allocates only the source's shards *)
  let dst = Coverage.Matrix.create ~configs:Config.lattice_count in
  Coverage.Matrix.merge_into ~dst mx;
  let std = Coverage.Matrix.stats dst in
  check_int "merge allocates source shards only" (List.length touched)
    std.Coverage.Matrix.m_allocated;
  check_int "merged calls" (Coverage.Matrix.calls_observed mx)
    (Coverage.Matrix.calls_observed dst);
  Coverage.Matrix.reset dst;
  check_int "reset drops shards" 0
    (Coverage.Matrix.stats dst).Coverage.Matrix.m_allocated

(* --- kill/resume checkpoint differential at lattice points ---

   For three lattice points, trace LTP pinned to the point, then replay
   the trace with a mid-stream kill and a checkpointed resume at jobs 1
   and 2: the final snapshot must be byte-identical to the
   uninterrupted run's.  The per-point coverages feed distinct matrix
   shards; the fifteen untouched configs must stay unallocated. *)

let with_temp_file f =
  let path = Filename.temp_file "iocov_config" ".bin" in
  Fun.protect (fun () -> f path)
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())

let trace_of_point (p : Config.point) path =
  let oc = open_out_bin path in
  let writer = Iocov_trace.Binary_io.writer oc in
  ignore
    (Iocov_suites.Ltp.run ~seed:11 ~scale:0.2
       ?config:(Runner.config_of_point p)
       ~sink:(Iocov_trace.Binary_io.sink writer)
       ~coverage:(Coverage.create ~metered:false ()) ());
  Iocov_trace.Binary_io.flush writer;
  close_out oc

let test_lattice_checkpoint_resume () =
  let filter = Iocov_trace.Filter.mount_point Iocov_suites.Ltp.mount in
  let mx = Coverage.Matrix.create ~configs:Config.lattice_count in
  let points = [ point "default"; point "tiny-quota"; point "no-xattr-space" ] in
  List.iter
    (fun (p : Config.point) ->
      with_temp_file (fun trace ->
          trace_of_point p trace;
          let full =
            match Replay.analyze_file ~pool:(Pool.create ~jobs:1 ()) ~filter trace with
            | Ok o -> o
            | Error msg -> Alcotest.failf "%s: full run: %s" p.Config.pt_name msg
          in
          let want = Snapshot.to_string full.Replay.coverage in
          check_bool (p.Config.pt_name ^ " trace is non-trivial") true
            (full.Replay.events > 100);
          with_temp_file (fun ck_path ->
              let limit = full.Replay.events / 2 in
              (match
                 Replay.analyze_file ~pool:(Pool.create ~jobs:1 ())
                   ~checkpoint:
                     { Replay.ckpt_path = ck_path;
                       ckpt_every = max 1 (limit / 3) }
                   ~limit ~filter trace
               with
              | Ok o -> check_int "killed at the limit" limit o.Replay.events
              | Error msg -> Alcotest.failf "interrupted run: %s" msg);
              let ck =
                match Checkpoint.load ck_path with
                | Ok ck -> ck
                | Error msg -> Alcotest.failf "checkpoint load: %s" msg
              in
              List.iter
                (fun jobs ->
                  match
                    Replay.analyze_file ~pool:(Pool.create ~jobs ())
                      ~resume:(ck_path, ck) ~filter trace
                  with
                  | Error msg -> Alcotest.failf "resume jobs=%d: %s" jobs msg
                  | Ok o ->
                    check_string
                      (Printf.sprintf "%s resumed jobs=%d byte-identical"
                         p.Config.pt_name jobs)
                      want
                      (Snapshot.to_string o.Replay.coverage))
                [ 1; 2 ]);
          (* feed the point's shard of the matrix *)
          ignore (Coverage.Matrix.shard mx p.Config.pt_id);
          ()))
    points;
  let st = Coverage.Matrix.stats mx in
  check_int "three shards allocated" 3 st.Coverage.Matrix.m_allocated

(* --- ledger config tagging --- *)

let mk_record ?config label =
  Ledger.make ~time:1000.0 ~seed:1 ?config ~subcommand:"suite" ~label ~flags:[]
    ~jobs:1 ~counters:"dense" ~events:10 ~kept:10 ~lost:0 ~wall_s:0.1 ~stages:[]
    (Coverage.create ~metered:false ())

let test_ledger_config_round_trip () =
  let tagged = mk_record ~config:("tiny-quota", "deadbeef") "LTP" in
  let plain = mk_record "LTP" in
  (match Ledger.of_json (Ledger.to_json tagged) with
   | Ok r ->
     check_bool "config survives json" true
       (r.Ledger.r_config = Some ("tiny-quota", "deadbeef"))
   | Error msg -> Alcotest.fail msg);
  (match Ledger.of_json (Ledger.to_json plain) with
   | Ok r -> check_bool "no config stays none" true (r.Ledger.r_config = None)
   | Error msg -> Alcotest.fail msg);
  check_string "config_name tagged" "tiny-quota" (Ledger.config_name tagged);
  check_string "config_name plain" "-" (Ledger.config_name plain)

let test_ledger_config_clash () =
  let a = mk_record ~config:("default", "11111111") "A" in
  let b = mk_record ~config:("tiny", "22222222") "B" in
  let a' = mk_record ~config:("default", "11111111") "A2" in
  let plain = mk_record "P" in
  check_bool "different digests clash" true (Ledger.config_clash a b);
  check_bool "same digest no clash" false (Ledger.config_clash a a');
  check_bool "pre-lattice records never clash" false (Ledger.config_clash a plain);
  check_bool "both plain never clash" false (Ledger.config_clash plain plain)

(* --- hub tenant pinning --- *)

let test_hub_config_pinning () =
  let hub = Hub.create () in
  let tiny = point "tiny-quota" in
  (match Hub.declare_config hub ~tenant:"alice" tiny with
   | Ok () -> ()
   | Error msg -> Alcotest.fail msg);
  (match Hub.declare_config hub ~tenant:"alice" tiny with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "re-declaring the same point: %s" msg);
  (match Hub.declare_config hub ~tenant:"alice" (point "default") with
   | Ok () -> Alcotest.fail "switching configs must be refused"
   | Error msg ->
     check_bool "error names both points" true
       (contains msg "tiny-quota" && contains msg "default"));
  (match Hub.tenant_config hub ~tenant:"alice" with
   | Some p -> check_string "pinned" "tiny-quota" p.Config.pt_name
   | None -> Alcotest.fail "tenant config lost");
  check_bool "unknown tenant unpinned" true
    (Hub.tenant_config hub ~tenant:"bob" = None)

let suites =
  [ ( "config-lattice",
      [ Alcotest.test_case "named points round-trip" `Quick test_round_trip_named;
        Alcotest.test_case "of_string rejects malformed" `Quick test_of_string_rejects;
        QCheck_alcotest.to_alcotest round_trip_prop;
        QCheck_alcotest.to_alcotest digest_prop;
        Alcotest.test_case "lattice shape" `Quick test_lattice_shape;
        Alcotest.test_case "print/parse lattice" `Quick test_lattice_print_parse;
        Alcotest.test_case "points_of_spec" `Quick test_points_of_spec;
        Alcotest.test_case "quota short-write then EDQUOT" `Quick
          test_quota_short_write;
        Alcotest.test_case "device ENOSPC before quota" `Quick
          test_device_enospc_before_quota;
        Alcotest.test_case "matrix lazy allocation" `Quick test_matrix_lazy_alloc;
        Alcotest.test_case "checkpoint resume at lattice points" `Quick
          test_lattice_checkpoint_resume;
        Alcotest.test_case "ledger config round-trip" `Quick
          test_ledger_config_round_trip;
        Alcotest.test_case "ledger config clash" `Quick test_ledger_config_clash;
        Alcotest.test_case "hub config pinning" `Quick test_hub_config_pinning ] ) ]
