(* Tests for the multi-tenant coverage service (DESIGN.md §16): the
   wire protocol, the hub's epoch-snapshot discipline, serve-vs-offline
   digest equivalence (unit and property), the socket daemon end to
   end, the run ledger's tenant column, and checkpoint tmp hygiene. *)

module Event = Iocov_trace.Event
module Filter = Iocov_trace.Filter
module Binary_io = Iocov_trace.Binary_io
module Coverage = Iocov_core.Coverage
module Ledger = Iocov_pipe.Ledger
module Pool = Iocov_par.Pool
module Checkpoint = Iocov_par.Checkpoint
module Replay = Iocov_par.Replay
module Protocol = Iocov_serve.Protocol
module Hub = Iocov_serve.Hub
module Server = Iocov_serve.Server
module Prng = Iocov_util.Prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let synth_events = Test_par.synth_events
let sequential_coverage = Test_par.sequential_coverage
let with_temp_file = Test_par.with_temp_file

let filter = Filter.mount_point "/mnt/test"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let write_binary ?(version = 3) path events =
  let oc = open_out_bin path in
  let w = Binary_io.writer ~version oc in
  List.iter (Binary_io.sink w) events;
  Binary_io.flush w;
  close_out oc

(* what `iocov analyze` would print for these events: the oracle every
   serve digest is compared against *)
let offline_digest events =
  let cov, _ = sequential_coverage filter events in
  Ledger.digest cov

let ingest_trace hub ~tenant path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      match Binary_io.open_stream ic with
      | Error msg -> Alcotest.failf "open_stream: %s" msg
      | Ok st ->
        let s = Hub.open_session hub ~tenant () in
        (match Hub.ingest_stream s st with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "ingest %s: %s" tenant msg);
        Hub.close_session s)

let hub_digest hub ~tenant =
  match Hub.digest hub ~tenant with
  | Some d -> d
  | None -> Alcotest.failf "tenant %s has no digest" tenant

(* --- protocol --- *)

let test_handshake_roundtrip () =
  let cases =
    [
      { Protocol.hs_role = Protocol.Ingest; hs_tenant = Some "alice";
        hs_mount = None; hs_format = Protocol.Binary; hs_config = None };
      { Protocol.hs_role = Protocol.Ingest; hs_tenant = Some "bob";
        hs_mount = Some "/mnt/other"; hs_format = Protocol.Text;
        hs_config = None };
      { Protocol.hs_role = Protocol.Ingest; hs_tenant = Some "dora";
        hs_mount = None; hs_format = Protocol.Binary;
        hs_config = Some "tiny-quota" };
      { Protocol.hs_role = Protocol.Query; hs_tenant = None;
        hs_mount = None; hs_format = Protocol.Binary; hs_config = None };
      { Protocol.hs_role = Protocol.Query; hs_tenant = Some "carol";
        hs_mount = None; hs_format = Protocol.Binary; hs_config = None };
    ]
  in
  List.iter
    (fun hs ->
      let line = Protocol.handshake_line hs in
      match Protocol.parse_handshake line with
      | Ok hs' -> check_bool line true (hs = hs')
      | Error msg -> Alcotest.failf "%s: %s" line msg)
    cases

let test_handshake_errors () =
  List.iter
    (fun line ->
      check_bool line true (Result.is_error (Protocol.parse_handshake line)))
    [
      "";                                  (* no magic *)
      "iocov-serve/9 query";               (* wrong version *)
      "iocov-serve/1";                     (* missing role *)
      "iocov-serve/1 listen";              (* unknown role *)
      "iocov-serve/1 ingest";              (* ingest without tenant *)
      "iocov-serve/1 ingest tenant=";      (* empty tenant *)
      "iocov-serve/1 query format=json";   (* unknown format *)
      "iocov-serve/1 query bogus";         (* stray token *)
    ]

let test_request_roundtrip () =
  let cases =
    Protocol.
      [
        Q_coverage; Q_tcd "read.count"; Q_adequacy ("open.flags", 500.0, 5.0);
        Q_completeness; Q_digest; Q_stats; Q_tenants; Q_metrics; Q_ping;
        Q_shutdown;
      ]
  in
  List.iter
    (fun q ->
      let line = Protocol.request_line ~tenant:"alice" q in
      match Protocol.parse_request line with
      | Ok p ->
        check_bool line true (p.Protocol.pr_request = q);
        check_bool (line ^ " tenant") true (p.Protocol.pr_tenant = Some "alice")
      | Error msg -> Alcotest.failf "%s: %s" line msg)
    cases

let test_request_defaults () =
  (match Protocol.parse_request "tcd" with
  | Ok { pr_request = Protocol.Q_tcd "open.flags"; pr_tenant = None } -> ()
  | _ -> Alcotest.fail "tcd default argument");
  (match Protocol.parse_request "adequacy" with
  | Ok { pr_request = Protocol.Q_adequacy ("open.flags", 1000.0, 10.0); _ } -> ()
  | _ -> Alcotest.fail "adequacy defaults");
  (* the tenant token may sit anywhere in the line *)
  match Protocol.parse_request "tenant=bob adequacy write.count 200" with
  | Ok { pr_request = Protocol.Q_adequacy ("write.count", 200.0, 10.0);
         pr_tenant = Some "bob" } -> ()
  | _ -> Alcotest.fail "tenant token stripped from any position"

let test_request_errors () =
  List.iter
    (fun line ->
      check_bool line true (Result.is_error (Protocol.parse_request line)))
    [ ""; "coverag"; "adequacy open.flags zero"; "adequacy open.flags -5";
      "adequacy open.flags 100 0" ]

let frame_through channel_body f =
  with_temp_file (fun path ->
      Out_channel.with_open_bin path (fun oc -> output_string oc channel_body);
      In_channel.with_open_bin path f)

let test_frame_roundtrip () =
  let payload = "line one\nline two\n" in
  frame_through (Protocol.ok_frame payload) (fun ic ->
      match Protocol.read_frame ic with
      | Ok body -> check_string "ok payload" payload body
      | Error msg -> Alcotest.failf "ok frame: %s" msg);
  frame_through (Protocol.err_frame "no such tenant") (fun ic ->
      match Protocol.read_frame ic with
      | Ok _ -> Alcotest.fail "err frame parsed as ok"
      | Error msg -> check_string "err payload" "no such tenant" msg);
  (* two frames back to back on one channel *)
  frame_through (Protocol.ok_frame "a" ^ Protocol.ok_frame "b") (fun ic ->
      check_bool "first" true (Protocol.read_frame ic = Ok "a");
      check_bool "second" true (Protocol.read_frame ic = Ok "b"))

let test_frame_malformed () =
  List.iter
    (fun body ->
      frame_through body (fun ic ->
          check_bool (String.escaped body) true
            (Result.is_error (Protocol.read_frame ic))))
    [
      "";                     (* closed before reply *)
      "ok\nx";                (* missing length *)
      "ok ten\n";             (* non-numeric length *)
      "ok 100\nshort";        (* truncated payload *)
      "yes 3\nabc";           (* unknown status *)
    ]

(* --- Dense epoch primitives --- *)

let dense_of events =
  let d = Coverage.Dense.create () in
  List.iter
    (fun e ->
      if Filter.keeps filter e then
        match e.Event.payload with
        | Event.Tracked call -> Coverage.Dense.observe d call e.Event.outcome
        | Event.Aux _ -> ())
    events;
  d

let dense_digest d = Ledger.digest (Coverage.Dense.to_reference ~metered:false d)

let test_dense_snapshot_frozen () =
  let events = synth_events ~seed:31 2_000 in
  let half = List.filteri (fun i _ -> i < 1_000) events in
  let d = dense_of half in
  let snap = Coverage.Dense.snapshot d in
  let frozen = dense_digest snap in
  check_string "snapshot equals source" (dense_digest d) frozen;
  (* keep mutating the original: the snapshot must not move *)
  List.iteri
    (fun i e ->
      if i >= 1_000 then
        match e.Event.payload with
        | Event.Tracked call -> Coverage.Dense.observe d call e.Event.outcome
        | Event.Aux _ -> ())
    events;
  check_string "snapshot frozen under mutation" frozen (dense_digest snap);
  check_bool "original moved" true (dense_digest d <> frozen);
  check_int "snapshot calls frozen"
    (List.length (List.filter (Filter.keeps filter) half))
    (Coverage.Dense.calls_observed snap)

let test_dense_reset () =
  let d = dense_of (synth_events ~seed:32 1_500) in
  check_bool "non-empty before reset" true (Coverage.Dense.calls_observed d > 0);
  Coverage.Dense.reset d;
  check_int "calls zero" 0 (Coverage.Dense.calls_observed d);
  check_string "reset equals fresh"
    (dense_digest (Coverage.Dense.create ()))
    (dense_digest d)

(* --- the hub --- *)

let test_hub_matches_offline () =
  let events = synth_events ~seed:41 4_000 in
  with_temp_file (fun path ->
      write_binary path events;
      let hub = Hub.create ~mount:"/mnt/test" () in
      ingest_trace hub ~tenant:"alice" path;
      check_string "serve digest = offline analyze" (offline_digest events)
        (hub_digest hub ~tenant:"alice"))

let test_hub_v2_fallback () =
  let events = synth_events ~seed:42 3_000 in
  with_temp_file (fun path ->
      write_binary ~version:2 path events;
      let hub = Hub.create ~mount:"/mnt/test" () in
      ingest_trace hub ~tenant:"alice" path;
      check_string "v2 stream digest = offline" (offline_digest events)
        (hub_digest hub ~tenant:"alice"))

let test_hub_text_side () =
  let events = synth_events ~seed:43 3_000 in
  let hub = Hub.create ~mount:"/mnt/test" () in
  let s = Hub.open_session hub ~tenant:"t" () in
  Hub.ingest_events s events;
  Hub.close_session s;
  check_string "ingest_events digest = offline" (offline_digest events)
    (hub_digest hub ~tenant:"t")

let test_hub_tenant_isolation () =
  let ev_a = synth_events ~seed:44 3_000 in
  let ev_b = synth_events ~seed:45 3_000 in
  with_temp_file (fun pa ->
      with_temp_file (fun pb ->
          write_binary pa ev_a;
          write_binary pb ev_b;
          let hub = Hub.create ~mount:"/mnt/test" () in
          ingest_trace hub ~tenant:"beta" pb;
          ingest_trace hub ~tenant:"alpha" pa;
          check_bool "ids sorted" true (Hub.tenant_ids hub = [ "alpha"; "beta" ]);
          check_string "alpha unpolluted" (offline_digest ev_a)
            (hub_digest hub ~tenant:"alpha");
          check_string "beta unpolluted" (offline_digest ev_b)
            (hub_digest hub ~tenant:"beta");
          check_bool "tenants differ" true
            (hub_digest hub ~tenant:"alpha" <> hub_digest hub ~tenant:"beta")))

let test_hub_session_mount_override () =
  let events = synth_events ~seed:46 2_000 in
  let hub = Hub.create ~mount:"/mnt/test" () in
  let s = Hub.open_session hub ~tenant:"narrow" ~mount:"/nowhere" () in
  Hub.ingest_events s events;
  Hub.close_session s;
  check_string "filtered-out stream leaves coverage empty"
    (Ledger.digest (Coverage.create ~metered:false ()))
    (hub_digest hub ~tenant:"narrow")

let test_hub_unknown_tenant () =
  let hub = Hub.create () in
  check_bool "query" true (Result.is_error (Hub.query hub ~tenant:"ghost" Hub.Digest));
  check_bool "digest" true (Hub.digest hub ~tenant:"ghost" = None);
  check_bool "stats" true (Hub.stats hub ~tenant:"ghost" = None)

let hub_stats hub ~tenant =
  match Hub.stats hub ~tenant with
  | Some st -> st
  | None -> Alcotest.failf "tenant %s has no stats" tenant

let test_hub_epoch_and_cache () =
  let events = synth_events ~seed:47 4_000 in
  with_temp_file (fun path ->
      write_binary path events;
      let hub = Hub.create ~mount:"/mnt/test" () in
      ingest_trace hub ~tenant:"t" path;
      let q () =
        match Hub.query hub ~tenant:"t" Hub.Coverage with
        | Ok s -> s
        | Error msg -> Alcotest.failf "query: %s" msg
      in
      let first = q () in
      let st1 = hub_stats hub ~tenant:"t" in
      check_int "one publish after first query" 1 st1.Hub.st_publishes;
      check_int "first query misses" 1 st1.Hub.st_cache_misses;
      check_bool "epoch current" true (st1.Hub.st_published = st1.Hub.st_generation);
      (* identical repeat: served from the render cache, no new epoch *)
      check_string "cached render identical" first (q ());
      let st2 = hub_stats hub ~tenant:"t" in
      check_int "cache hit" 1 st2.Hub.st_cache_hits;
      check_int "still one publish" 1 st2.Hub.st_publishes;
      (* a different query against the same epoch: miss, but no publish *)
      (match Hub.query hub ~tenant:"t" Hub.Completeness with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "completeness: %s" msg);
      check_int "same epoch reused" 1 (hub_stats hub ~tenant:"t").Hub.st_publishes;
      (* new data dirties the watermark: next query publishes epoch 2 *)
      ingest_trace hub ~tenant:"t" path;
      let again = q () in
      check_bool "stale render replaced" true (again <> first);
      let st3 = hub_stats hub ~tenant:"t" in
      check_int "second publish" 2 st3.Hub.st_publishes;
      check_int "events doubled" (2 * List.length events) st3.Hub.st_events;
      check_int "streams counted" 2 st3.Hub.st_streams;
      check_int "no live sessions" 0 st3.Hub.st_sessions)

(* Satellite 3, the property: at ANY committed cut — random trace,
   random batch size, random query interleavings — a tenant's epoch
   digest equals an offline analyze of the records produced so far. *)
let serve_equivalence_prop =
  QCheck.Test.make ~count:25
    ~name:"serve epoch digest = offline analyze at every committed cut"
    QCheck.(
      triple (int_range 0 10_000) (int_range 200 1_500) (int_range 1 300))
    (fun (s, n, batch) ->
      let events = synth_events ~seed:(7_000 + s) n in
      with_temp_file (fun path ->
          write_binary path events;
          let hub = Hub.create ~mount:"/mnt/test" ~batch () in
          let rng = Prng.create ~seed:s in
          let session = Hub.open_session hub ~tenant:"prop" () in
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              match Binary_io.open_stream ic with
              | Error msg -> QCheck.Test.fail_report msg
              | Ok st ->
                let produced = ref 0 in
                let continue = ref true in
                while !continue do
                  match Hub.ingest_step session st with
                  | Error msg -> QCheck.Test.fail_report msg
                  | Ok 0 -> continue := false
                  | Ok k ->
                    produced := !produced + k;
                    (* interleave a mid-stream query at a random cut *)
                    if Prng.chance rng 0.3 then begin
                      let prefix =
                        List.filteri (fun i _ -> i < !produced) events
                      in
                      let off = offline_digest prefix in
                      let d = hub_digest hub ~tenant:"prop" in
                      if d <> off then
                        QCheck.Test.fail_reportf
                          "cut %d/%d (batch %d): serve %s, offline %s" !produced
                          n batch d off
                    end
                done;
                Hub.close_session session;
                check_int "whole trace produced" n !produced;
                hub_digest hub ~tenant:"prop" = offline_digest events)))

(* --- the daemon --- *)

let with_temp_dir f =
  let dir = Filename.temp_file "iocov_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let test_server_file_mode () =
  let events = synth_events ~seed:51 3_000 in
  with_temp_file (fun path ->
      write_binary path events;
      match
        Server.run
          { Server.default_config with
            ingests = [ ("solo", path) ]; mount = Some "/mnt/test" }
      with
      | Error msg -> Alcotest.failf "file-mode run: %s" msg
      | Ok outcome ->
        (match outcome.Server.o_tenants with
        | [ { Server.o_tenant = "solo"; o_coverage; o_stats; o_config = _ } ] ->
          check_string "file-mode digest = offline" (offline_digest events)
            (Ledger.digest o_coverage);
          check_int "all records seen" (List.length events) o_stats.Hub.st_events
        | _ -> Alcotest.fail "expected exactly one tenant outcome"))

let test_server_socket_end_to_end () =
  with_temp_dir @@ fun dir ->
  let sock = Filename.concat dir "iocov.sock" in
  let ev_a = synth_events ~seed:52 3_000 in
  let ev_b = synth_events ~seed:53 3_000 in
  let ta = Filename.concat dir "a.trace" in
  let tb = Filename.concat dir "b.trace" in
  write_binary ta ev_a;
  write_binary tb ev_b;
  let ready = Atomic.make false in
  let result = ref (Error "server never ran") in
  let th =
    Thread.create
      (fun () ->
        result :=
          Server.run
            ~on_ready:(fun () -> Atomic.set ready true)
            { Server.default_config with
              socket = Some sock; mount = Some "/mnt/test" })
      ()
  in
  while not (Atomic.get ready) do
    Thread.yield ()
  done;
  (match Server.client_ingest ~socket:sock ~tenant:"alice" ta with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "ingest alice: %s" msg);
  (match Server.client_ingest ~socket:sock ~tenant:"bob" tb with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "ingest bob: %s" msg);
  (match Server.client_query ~socket:sock ~tenant:"alice" [ "ping"; "digest" ] with
  | Ok [ ping; digest ] ->
    check_string "ping" "pong" (String.trim ping);
    check_string "alice digest over the wire" (offline_digest ev_a)
      (String.trim digest)
  | Ok _ -> Alcotest.fail "expected two replies"
  | Error msg -> Alcotest.failf "query: %s" msg);
  (* a bad request must not wedge the connection or the server *)
  (match Server.client_query ~socket:sock [ "bogus" ] with
  | Ok _ -> Alcotest.fail "bogus request succeeded"
  | Error _ -> ());
  (match Server.client_query ~socket:sock [ "tenants"; "shutdown" ] with
  | Ok [ tenants; _ ] ->
    check_string "tenant roster" "alice\nbob" (String.trim tenants)
  | Ok _ -> Alcotest.fail "expected two replies"
  | Error msg -> Alcotest.failf "shutdown: %s" msg);
  Thread.join th;
  check_bool "socket unlinked on exit" false (Sys.file_exists sock);
  match !result with
  | Error msg -> Alcotest.failf "server: %s" msg
  | Ok outcome ->
    let digests =
      List.map
        (fun o -> (o.Server.o_tenant, Ledger.digest o.Server.o_coverage))
        outcome.Server.o_tenants
    in
    check_bool "final outcomes match offline" true
      (digests
      = [ ("alice", offline_digest ev_a); ("bob", offline_digest ev_b) ])

(* --- graceful degradation: silent clients, torn streams, rotated tails --- *)

let start_server config =
  let ready = Atomic.make false in
  let result = ref (Error "server never ran") in
  let th =
    Thread.create
      (fun () ->
        result := Server.run ~on_ready:(fun () -> Atomic.set ready true) config)
      ()
  in
  while not (Atomic.get ready) do
    Thread.yield ()
  done;
  (th, result)

let shutdown_and_join ~socket (th, result) =
  ignore (Server.client_query ~socket [ "shutdown" ]);
  Thread.join th;
  match !result with
  | Error msg -> Alcotest.failf "server: %s" msg
  | Ok outcome -> outcome

let test_handshake_timeout_frees_slot () =
  with_temp_dir @@ fun dir ->
  let sock = Filename.concat dir "s.sock" in
  let server =
    start_server
      { Server.default_config with socket = Some sock; handshake_timeout = 0.2 }
  in
  (* a client that connects and never speaks *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  let buf = Bytes.create 16 in
  (match Unix.read fd buf 0 16 with
  | 0 -> () (* the server gave up on the handshake and closed its side *)
  | n -> Alcotest.failf "unexpected %d bytes from a silent handshake" n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    Alcotest.fail "server still holding the silent connection after 5s");
  Unix.close fd;
  (* and the daemon still serves *)
  (match Server.client_query ~socket:sock [ "ping" ] with
  | Ok [ ping ] -> check_string "daemon alive" "pong" (String.trim ping)
  | Ok _ -> Alcotest.fail "expected one reply"
  | Error msg -> Alcotest.failf "query after timeout: %s" msg);
  ignore (shutdown_and_join ~socket:sock server)

let test_partial_frame_on_ledger () =
  with_temp_dir @@ fun dir ->
  let sock = Filename.concat dir "s.sock" in
  let trace = Filename.concat dir "t.trace" in
  write_binary trace (synth_events ~seed:73 2_000);
  let bytes = In_channel.with_open_bin trace In_channel.input_all in
  let server =
    start_server
      { Server.default_config with socket = Some sock; mount = Some "/mnt/test" }
  in
  (* an ingest connection that vanishes mid-frame *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  output_string oc
    (Protocol.handshake_line
       {
         Protocol.hs_role = Protocol.Ingest;
         hs_tenant = Some "torn";
         hs_mount = None;
         hs_format = Protocol.Binary;
         hs_config = None;
       }
    ^ "\n");
  output_string oc (String.sub bytes 0 (String.length bytes - 7));
  flush oc;
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let reply = Protocol.read_frame ic in
  check_bool "torn stream rejected" true (Result.is_error reply);
  close_out_noerr oc;
  close_in_noerr ic;
  (* the slot is free and the loss is on the tenant's ledger *)
  (match Server.client_query ~socket:sock ~tenant:"torn" [ "completeness" ] with
  | Ok [ reply ] ->
    check_bool "truncation recorded" true (contains reply "truncated");
    check_bool "anomaly names the discard" true (contains reply "partial frame")
  | Ok _ -> Alcotest.fail "expected one reply"
  | Error msg -> Alcotest.failf "completeness: %s" msg);
  ignore (shutdown_and_join ~socket:sock server)

let test_tail_rotation_resets () =
  with_temp_dir @@ fun dir ->
  let sock = Filename.concat dir "s.sock" in
  let trace = Filename.concat dir "roll.trace" in
  let ev_old = synth_events ~seed:74 2_000 in
  let ev_new = synth_events ~seed:75 400 in
  write_binary trace ev_old;
  let server =
    start_server
      { Server.default_config with
        socket = Some sock;
        ingests = [ ("roll", trace) ];
        follow = true;
        mount = Some "/mnt/test" }
  in
  let events () =
    match Server.client_query ~socket:sock ~tenant:"roll" [ "stats" ] with
    | Ok [ reply ] -> (try Scanf.sscanf reply "events %d" Fun.id with _ -> -1)
    | _ -> -1
  in
  let wait_for n =
    let deadline = Unix.gettimeofday () +. 10.0 in
    while
      events () < n
      &&
      if Unix.gettimeofday () > deadline then
        Alcotest.failf "timeout waiting for %d events" n
      else true
    do
      Thread.delay 0.02
    done
  in
  wait_for (List.length ev_old);
  (* rotate: atomically swap in a much smaller trace, so the tailer's
     next pass finds the file shrunk below its frozen cursor *)
  let fresh = Filename.concat dir "fresh.trace" in
  write_binary fresh ev_new;
  Sys.rename fresh trace;
  wait_for (List.length ev_old + List.length ev_new);
  (match Server.client_query ~socket:sock ~tenant:"roll" [ "completeness" ] with
  | Ok [ reply ] ->
    check_bool "reset recorded" true (contains reply "truncated");
    check_bool "anomaly explains the restart" true (contains reply "rotated")
  | Ok _ -> Alcotest.fail "expected one reply"
  | Error msg -> Alcotest.failf "completeness: %s" msg);
  let outcome = shutdown_and_join ~socket:sock server in
  match outcome.Server.o_tenants with
  | [ o ] ->
    check_int "both generations ingested"
      (List.length ev_old + List.length ev_new)
      o.Server.o_stats.Hub.st_events
  | _ -> Alcotest.fail "expected exactly one tenant"

(* --- ledger: the tenant column --- *)

let ledger_record ?tenant label =
  let cov, _ = sequential_coverage filter (synth_events ~seed:61 500) in
  Ledger.make ?tenant ~time:0.0 ~subcommand:"serve" ~label ~flags:[] ~jobs:1
    ~counters:"dense" ~events:500 ~kept:400 ~lost:0 ~wall_s:0.5 ~stages:[] cov

let test_ledger_tenant_roundtrip () =
  List.iter
    (fun tenant ->
      let r = ledger_record ?tenant "t.trace" in
      match Ledger.of_json (Ledger.to_json r) with
      | Ok r' ->
        check_bool "tenant survives json" true (r'.Ledger.r_tenant = tenant);
        check_string "digest survives json" r.Ledger.r_digest r'.Ledger.r_digest
      | Error msg -> Alcotest.failf "round-trip: %s" msg)
    [ None; Some "alice" ]

let test_ledger_last () =
  with_temp_dir @@ fun dir ->
  List.iter
    (fun (t, l) ->
      match Ledger.append ~dir (ledger_record ?tenant:t l) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "append: %s" msg)
    [ (None, "one"); (Some "alice", "two"); (Some "bob", "three") ];
  let loaded = Ledger.load ~dir in
  check_int "all records" 3 (List.length loaded.Ledger.records);
  let last2 = Ledger.last 2 loaded in
  check_bool "newest two, ids untouched" true
    (List.map (fun r -> (r.Ledger.r_id, r.Ledger.r_label, r.Ledger.r_tenant))
       last2.Ledger.records
    = [ ("r2", "two", Some "alice"); ("r3", "three", Some "bob") ]);
  check_int "last larger than file is whole file" 3
    (List.length (Ledger.last 10 loaded).Ledger.records);
  (* the tenant shows up in the list view *)
  let listing = Ledger.render_list last2 in
  check_bool "tenant column rendered" true
    (contains listing "alice" && contains listing "bob")

(* --- checkpoint hygiene --- *)

let test_checkpoint_clean_stale () =
  with_temp_file (fun path ->
      let tmp = path ^ ".tmp" in
      check_bool "nothing to sweep" false (Checkpoint.clean_stale ~path);
      Out_channel.with_open_bin tmp (fun oc -> output_string oc "torn half-write");
      check_bool "stale tmp swept" true (Checkpoint.clean_stale ~path);
      check_bool "tmp gone" false (Sys.file_exists tmp))

let test_checkpoint_failed_save_leaves_no_tmp () =
  with_temp_dir @@ fun dir ->
  let events = synth_events ~seed:62 500 in
  let trace = Filename.concat dir "t.trace" in
  write_binary trace events;
  let ck =
    let ic = open_in_bin trace in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match Binary_io.open_stream ic with
        | Error msg -> Alcotest.failf "open_stream: %s" msg
        | Ok st ->
          ignore (Binary_io.read_batch st ~max:100);
          let cov, kept = sequential_coverage filter events in
          {
            Checkpoint.trace; cursor = Binary_io.cursor st; events = 100; kept;
            batches = 1; completeness = Binary_io.completeness st;
            coverage = cov;
          })
  in
  (* rename onto a directory fails after the tmp is fully written: the
     failure path must remove it *)
  let target = Filename.concat dir "blocked" in
  Unix.mkdir target 0o700;
  Fun.protect
    ~finally:(fun () -> try Unix.rmdir target with Unix.Unix_error _ -> ())
    (fun () ->
      check_bool "save onto a directory raises" true
        (match Checkpoint.save ~path:target ck with
        | () -> false
        | exception _ -> true);
      check_bool "no tmp left behind" false (Sys.file_exists (target ^ ".tmp")));
  (* and a clean save leaves the checkpoint but no tmp *)
  let good = Filename.concat dir "good.ckpt" in
  Checkpoint.save ~path:good ck;
  check_bool "checkpoint written" true (Sys.file_exists good);
  check_bool "no tmp after clean save" false (Sys.file_exists (good ^ ".tmp"));
  (match Checkpoint.load good with
  | Ok loaded -> check_int "round-trips" 100 loaded.Checkpoint.events
  | Error msg -> Alcotest.failf "load: %s" msg);
  Sys.remove good

let test_checkpointed_replay_sweeps_stale_tmp () =
  let events = synth_events ~seed:63 2_000 in
  with_temp_file (fun trace ->
      write_binary trace events;
      with_temp_file (fun ck_path ->
          let tmp = ck_path ^ ".tmp" in
          Out_channel.with_open_bin tmp (fun oc ->
              output_string oc "dropping from a killed predecessor");
          (match
             Replay.analyze_file ~pool:(Pool.create ~jobs:1 ())
               ~checkpoint:{ Replay.ckpt_path = ck_path; ckpt_every = 500 }
               ~filter trace
           with
          | Ok _ -> ()
          | Error msg -> Alcotest.failf "replay: %s" msg);
          check_bool "stale tmp swept on start" false (Sys.file_exists tmp);
          check_bool "checkpoint still valid" true
            (Result.is_ok (Checkpoint.load ck_path))))

let suites =
  [
    ( "serve.protocol",
      [
        Alcotest.test_case "handshake round-trip" `Quick test_handshake_roundtrip;
        Alcotest.test_case "handshake errors" `Quick test_handshake_errors;
        Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
        Alcotest.test_case "request defaults" `Quick test_request_defaults;
        Alcotest.test_case "request errors" `Quick test_request_errors;
        Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
        Alcotest.test_case "malformed frames" `Quick test_frame_malformed;
      ] );
    ( "serve.dense",
      [
        Alcotest.test_case "snapshot is frozen" `Quick test_dense_snapshot_frozen;
        Alcotest.test_case "reset zeroes in place" `Quick test_dense_reset;
      ] );
    ( "serve.hub",
      [
        Alcotest.test_case "digest = offline analyze" `Quick test_hub_matches_offline;
        Alcotest.test_case "v2 stream fallback" `Quick test_hub_v2_fallback;
        Alcotest.test_case "text-side ingest" `Quick test_hub_text_side;
        Alcotest.test_case "tenant isolation" `Quick test_hub_tenant_isolation;
        Alcotest.test_case "per-session mount override" `Quick
          test_hub_session_mount_override;
        Alcotest.test_case "unknown tenant" `Quick test_hub_unknown_tenant;
        Alcotest.test_case "epoch + cache discipline" `Quick test_hub_epoch_and_cache;
        QCheck_alcotest.to_alcotest ~long:true serve_equivalence_prop;
      ] );
    ( "serve.server",
      [
        Alcotest.test_case "file mode" `Quick test_server_file_mode;
        Alcotest.test_case "socket end to end" `Quick test_server_socket_end_to_end;
        Alcotest.test_case "handshake timeout frees the slot" `Quick
          test_handshake_timeout_frees_slot;
        Alcotest.test_case "partial frame lands on the ledger" `Quick
          test_partial_frame_on_ledger;
        Alcotest.test_case "tail rotation resets the cursor" `Quick
          test_tail_rotation_resets;
      ] );
    ( "serve.ledger",
      [
        Alcotest.test_case "tenant json round-trip" `Quick test_ledger_tenant_roundtrip;
        Alcotest.test_case "runs list --last" `Quick test_ledger_last;
      ] );
    ( "serve.checkpoint",
      [
        Alcotest.test_case "clean_stale sweeps tmp" `Quick test_checkpoint_clean_stale;
        Alcotest.test_case "failed save removes tmp" `Quick
          test_checkpoint_failed_save_leaves_no_tmp;
        Alcotest.test_case "replay sweeps predecessor tmp" `Quick
          test_checkpointed_replay_sweeps_stale_tmp;
      ] );
  ]
