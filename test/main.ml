(* Test entry point: one Alcotest run over every module's suites. *)

let () =
  Alcotest.run "iocov"
    (Test_util.suites @ Test_regex.suites @ Test_syscall.suites @ Test_vfs.suites
     @ Test_crash.suites @ Test_crash_engine.suites @ Test_trace.suites @ Test_core.suites @ Test_suites.suites
     @ Test_bugstudy.suites @ Test_integration.suites @ Test_extensions.suites
     @ Test_model_based.suites @ Test_obs.suites @ Test_par.suites
     @ Test_dense.suites @ Test_robust.suites @ Test_pipe.suites
     @ Test_flight.suites @ Test_serve.suites @ Test_config.suites)
