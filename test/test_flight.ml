(* Tests for the flight recorder (DESIGN.md §14): trace-event
   timelines, the live progress sink under a fake clock, and the
   persistent run ledger with its cross-run diffs. *)

open Iocov_syscall
module Trace_event = Iocov_obs.Trace_event
module Clock = Iocov_obs.Clock
module Progress = Iocov_pipe.Progress
module Ledger = Iocov_pipe.Ledger
module Replay = Iocov_par.Replay
module Json = Iocov_util.Json
module Coverage = Iocov_core.Coverage
module Plan = Iocov_core.Plan

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

(* --- the trace-event recorder --- *)

(* A settable clock: tests advance [t] explicitly, so every timestamp
   in the recorded timeline is chosen, not measured. *)
let with_clock f =
  let t = ref 0.0 in
  Clock.set (fun () -> !t);
  Fun.protect (fun () -> f t) ~finally:(fun () ->
      Clock.reset ();
      Trace_event.stop ();
      Trace_event.clear ())

let test_trace_capture () =
  with_clock (fun t ->
      Trace_event.start ();
      check_bool "recording" true (Trace_event.enabled ());
      t := 0.25;
      Trace_event.instant ~cat:"pool" ~args:[ ("shard", "3") ] "shard-spawn";
      Trace_event.complete ~cat:"stage" ~name:"batch" ~ts:0.5 ~dur:0.125 ();
      Trace_event.stop ();
      match Trace_event.events () with
      | [ a; b ] ->
        check_string "instant first" "shard-spawn" a.Trace_event.ev_name;
        check_float "instant rebased" 0.25 a.Trace_event.ev_ts;
        check_bool "instant phase" true (a.Trace_event.ev_ph = Trace_event.Instant);
        check_string "complete name" "batch" b.Trace_event.ev_name;
        check_float "complete ts" 0.5 b.Trace_event.ev_ts;
        check_float "complete dur" 0.125 b.Trace_event.ev_dur;
        check_string "category kept" "stage" b.Trace_event.ev_cat
      | l -> Alcotest.failf "expected 2 events, got %d" (List.length l))

let test_trace_disabled_is_noop () =
  with_clock (fun _ ->
      Trace_event.clear ();
      check_bool "disabled" false (Trace_event.enabled ());
      Trace_event.instant "ignored";
      Trace_event.complete ~name:"ignored" ~ts:0.0 ~dur:1.0 ();
      check_int "nothing captured" 0 (List.length (Trace_event.events ())))

let test_trace_ring_drops_oldest () =
  with_clock (fun t ->
      Trace_event.start ~capacity:4 ();
      for i = 1 to 10 do
        t := float_of_int i;
        Trace_event.instant (Printf.sprintf "e%d" i)
      done;
      Trace_event.stop ();
      let evs = Trace_event.events () in
      check_int "ring keeps the newest" 4 (List.length evs);
      check_int "overwrites counted" 6 (Trace_event.dropped ());
      check_string "oldest survivor" "e7" (List.hd evs).Trace_event.ev_name)

(* The exported JSON must be well-formed and carry the Chrome
   trace-event shape: a traceEvents array, microsecond integers-as-
   floats, phases X/i/M, and thread_name metadata per domain. *)
let test_trace_json_wellformed () =
  with_clock (fun t ->
      Trace_event.start ();
      t := 0.5;
      Trace_event.instant ~cat:"ingest" "resync";
      Trace_event.complete ~cat:"span" ~name:"pipe/file" ~ts:0.0 ~dur:2.0 ();
      Trace_event.stop ();
      let j =
        match Json.of_string (Trace_event.to_json ()) with
        | Ok j -> j
        | Error msg -> Alcotest.failf "export is not valid JSON: %s" msg
      in
      let evs =
        match Option.bind (Json.member "traceEvents" j) Json.to_list with
        | Some l -> l
        | None -> Alcotest.fail "no traceEvents array"
      in
      let phase e = Option.bind (Json.member "ph" e) Json.to_str in
      let named ph = List.filter (fun e -> phase e = Some ph) evs in
      check_int "one complete" 1 (List.length (named "X"));
      check_int "one instant" 1 (List.length (named "i"));
      check_bool "thread_name metadata present" true (named "M" <> []);
      let x = List.hd (named "X") in
      check_bool "microsecond duration" true
        (Option.bind (Json.member "dur" x) Json.to_float = Some 2_000_000.0);
      let i = List.hd (named "i") in
      check_bool "instant scope" true
        (Option.bind (Json.member "s" i) Json.to_str = Some "t"))

(* Span completions land in the recorder (category "span") while it is
   running — the bridge the driver timeline is built from. *)
let test_trace_records_spans () =
  with_clock (fun t ->
      Iocov_obs.Span.reset ();
      Trace_event.start ();
      t := 1.0;
      Iocov_obs.Span.with_ ~name:"work" (fun () -> t := 3.5);
      Trace_event.stop ();
      match
        List.filter (fun e -> e.Trace_event.ev_cat = "span") (Trace_event.events ())
      with
      | [ e ] ->
        check_string "span name" "work" e.Trace_event.ev_name;
        check_float "span start rebased" 1.0 e.Trace_event.ev_ts;
        check_float "span duration" 2.5 e.Trace_event.ev_dur
      | l -> Alcotest.failf "expected 1 span event, got %d" (List.length l))

(* --- the progress sink --- *)

let conf ?budget ~emit every = { Progress.every; format = Progress.Text; emit; budget }

let test_progress_rates_and_eta () =
  let t = ref 0.0 in
  let clock () = !t in
  let tr = Progress.tracker ~clock ~total:1000 (conf ~emit:ignore 100) in
  let none () = None in
  t := 1.0;
  let s = Progress.snapshot tr ~events:100 ~peek:none ~final:false in
  check_float "cumulative rate" 100.0 s.Progress.p_rate_cum;
  check_float "first window equals cumulative" 100.0 s.Progress.p_rate_win;
  check_bool "eta from window" true (s.Progress.p_eta_s = Some 9.0);
  check_bool "no coverage peeked" true (s.Progress.p_cells = None);
  (* advance the window via an emitting tick, then re-measure *)
  Progress.tick tr ~events:100 ~peek:none;
  t := 2.0;
  let s = Progress.snapshot tr ~events:300 ~peek:none ~final:false in
  check_float "cumulative over 2s" 150.0 s.Progress.p_rate_cum;
  check_float "windowed over last 1s" 200.0 s.Progress.p_rate_win;
  check_bool "eta shrinks with the window" true (s.Progress.p_eta_s = Some 3.5)

let test_progress_tick_threshold () =
  let lines = ref [] in
  let t = ref 0.0 in
  let tr =
    Progress.tracker ~clock:(fun () -> !t) (conf ~emit:(fun l -> lines := l :: !lines) 100)
  in
  let none () = None in
  Progress.tick tr ~events:50 ~peek:none;
  check_int "below threshold: silent" 0 (Progress.emitted tr);
  t := 1.0;
  Progress.tick tr ~events:100 ~peek:none;
  check_int "threshold crossed: one line" 1 (Progress.emitted tr);
  Progress.tick tr ~events:150 ~peek:none;
  check_int "window restarts after emit" 1 (Progress.emitted tr);
  t := 2.0;
  Progress.finish tr ~events:150 ~peek:none;
  check_int "finish always emits" 2 (Progress.emitted tr);
  match !lines with
  | [ final; first ] ->
    check_bool "progress prefix" true (String.length first >= 9 && String.sub first 0 9 = "progress:");
    check_bool "final prefix" true (String.length final >= 5 && String.sub final 0 5 = "done:")
  | l -> Alcotest.failf "expected 2 lines, got %d" (List.length l)

let test_progress_jsonl_parses () =
  let t = ref 0.0 in
  let tr = Progress.tracker ~clock:(fun () -> !t) ~total:200 (conf ~emit:ignore 10) in
  t := 2.0;
  let cov = Coverage.create () in
  Coverage.observe cov (Model.open_ ~flags:0 "/f") (Model.Ret 3);
  let s =
    Progress.snapshot tr ~events:200
      ~peek:(fun () -> Some (Replay.view_of_coverage cov ~events:200))
      ~final:true
  in
  match Json.of_string (Progress.render_jsonl s) with
  | Error msg -> Alcotest.failf "jsonl line is not JSON: %s" msg
  | Ok j ->
    check_bool "events field" true
      (Option.bind (Json.member "events" j) Json.to_int = Some 200);
    check_bool "final flag" true (Json.member "final" j = Some (Json.Bool true));
    check_bool "eta omitted when done" true (Json.member "eta_s" j = Some Json.Null);
    let cells = Option.get (Json.member "cells" j) in
    check_bool "cell total" true
      (Option.bind (Json.member "total" cells) Json.to_int = Some Plan.total);
    check_bool "some cells lit" true
      (match Option.bind (Json.member "lit" cells) Json.to_int with
       | Some n -> n > 0
       | None -> false)

(* --- the run ledger --- *)

let sample_coverage ?(extra = false) () =
  let cov = Coverage.create () in
  Coverage.observe cov (Model.open_ ~flags:0 "/a") (Model.Ret 3);
  Coverage.observe cov (Model.write ~fd:3 ~count:4096 ()) (Model.Ret 4096);
  if extra then Coverage.observe cov (Model.close 3) (Model.Ret 0);
  cov

let sample_record ?extra ?(label = "t.bin") () =
  Ledger.make ~seed:42 ~subcommand:"analyze" ~label
    ~flags:[ ("ingest", "strict") ]
    ~jobs:4 ~counters:"dense" ~events:1000 ~kept:990 ~lost:10 ~wall_s:1.5
    ~stages:[ ("pipe/file", 1.25) ]
    (sample_coverage ?extra ())

let with_temp_dir f =
  let dir =
    Filename.temp_file "iocov_ledger" ""
    |> fun p ->
    Sys.remove p;
    Sys.mkdir p 0o755;
    p
  in
  Fun.protect (fun () -> f dir) ~finally:(fun () ->
      let file = Ledger.path ~dir in
      if Sys.file_exists file then Sys.remove file;
      if Sys.file_exists dir then Sys.rmdir dir)

let test_ledger_roundtrip () =
  let r = { (sample_record ()) with Ledger.r_id = "r9" } in
  match Ledger.parse_line (Json.to_string (Ledger.to_json r)) with
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg
  | Ok r' ->
    check_bool "record survives JSON round-trip" true (r = r')

let test_ledger_append_load () =
  with_temp_dir (fun dir ->
      (match Ledger.append ~dir (sample_record ()) with
       | Ok r -> check_string "first id" "r1" r.Ledger.r_id
       | Error msg -> Alcotest.fail msg);
      (match Ledger.append ~dir (sample_record ~extra:true ~label:"u.bin" ()) with
       | Ok r -> check_string "second id" "r2" r.Ledger.r_id
       | Error msg -> Alcotest.fail msg);
      let { Ledger.records; bad_lines } = Ledger.load ~dir in
      check_int "both readable" 2 (List.length records);
      check_int "no bad lines" 0 bad_lines;
      check_bool "find by id" true
        ((Option.get (Ledger.find records "r2")).Ledger.r_label = "u.bin");
      check_bool "find by position" true
        ((Option.get (Ledger.find records "1")).Ledger.r_label = "t.bin"))

(* A crash mid-append can at worst truncate the final line; the loader
   counts it and keeps everything before it. *)
let test_ledger_truncated_tail () =
  with_temp_dir (fun dir ->
      ignore (Ledger.append ~dir (sample_record ()));
      ignore (Ledger.append ~dir (sample_record ~label:"u.bin" ()));
      let file = Ledger.path ~dir in
      let text = In_channel.with_open_text file In_channel.input_all in
      let cut = String.length text - 25 in
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc (String.sub text 0 cut));
      let { Ledger.records; bad_lines } = Ledger.load ~dir in
      check_int "intact prefix kept" 1 (List.length records);
      check_int "torn tail counted" 1 bad_lines;
      (* the ledger keeps accepting appends after the tear *)
      match Ledger.append ~dir (sample_record ~label:"v.bin" ()) with
      | Ok r -> check_string "next id after recovery" "r2" r.Ledger.r_id
      | Error msg -> Alcotest.fail msg)

let test_ledger_missing_dir_empty () =
  let { Ledger.records; bad_lines } = Ledger.load ~dir:"/nonexistent/iocov" in
  check_int "no records" 0 (List.length records);
  check_int "no bad lines" 0 bad_lines

let test_diff_identical () =
  let a = sample_record () and b = sample_record () in
  let d = Ledger.diff a b in
  check_bool "identical digests" true d.Ledger.d_identical;
  check_int "nothing gained" 0 (List.length d.Ledger.d_gained);
  check_int "nothing lost" 0 (List.length d.Ledger.d_lost)

let test_diff_gained_and_lost () =
  let a = sample_record () and b = sample_record ~extra:true () in
  let d = Ledger.diff a b in
  check_bool "different digests" false d.Ledger.d_identical;
  check_bool "close(3) lights new cells" true (d.Ledger.d_gained <> []);
  check_int "nothing lost going forward" 0 (List.length d.Ledger.d_lost);
  (* the reverse diff mirrors it *)
  let d' = Ledger.diff b a in
  check_bool "reverse loses the same cells" true
    (d'.Ledger.d_lost = d.Ledger.d_gained);
  (* gained ids are real plan cells *)
  List.iter (fun id -> check_bool "cell id in range" true (id >= 0 && id < Plan.total))
    d.Ledger.d_gained

let test_bitmap_cells_agree () =
  let cov = sample_coverage () in
  let ids = Ledger.bitmap_cells (Ledger.bitmap cov) in
  let v, i, o = Coverage.lit_cells cov in
  check_int "bitmap population matches lit cells" (v + i + o) (List.length ids);
  List.iter
    (fun id ->
      check_bool "every bitmap cell has a nonzero count" true
        (Coverage.cell_count cov Plan.cells.(id) > 0))
    ids

let suites =
  [ ( "flight.trace",
      [ Alcotest.test_case "capture" `Quick test_trace_capture;
        Alcotest.test_case "disabled is a no-op" `Quick test_trace_disabled_is_noop;
        Alcotest.test_case "ring drops oldest" `Quick test_trace_ring_drops_oldest;
        Alcotest.test_case "json well-formed" `Quick test_trace_json_wellformed;
        Alcotest.test_case "span bridge" `Quick test_trace_records_spans ] );
    ( "flight.progress",
      [ Alcotest.test_case "rates and eta" `Quick test_progress_rates_and_eta;
        Alcotest.test_case "tick threshold" `Quick test_progress_tick_threshold;
        Alcotest.test_case "jsonl parses" `Quick test_progress_jsonl_parses ] );
    ( "flight.ledger",
      [ Alcotest.test_case "json round-trip" `Quick test_ledger_roundtrip;
        Alcotest.test_case "append and load" `Quick test_ledger_append_load;
        Alcotest.test_case "truncated tail" `Quick test_ledger_truncated_tail;
        Alcotest.test_case "missing dir" `Quick test_ledger_missing_dir_empty;
        Alcotest.test_case "diff identical" `Quick test_diff_identical;
        Alcotest.test_case "diff gained/lost" `Quick test_diff_gained_and_lost;
        Alcotest.test_case "bitmap agrees" `Quick test_bitmap_cells_agree ] ) ]
