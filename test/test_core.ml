(* Tests for the IOCov core: argument classes, partitioning, coverage
   accumulation with variant merging, combination analysis, TCD, and
   adequacy classification. *)

open Iocov_syscall
module Arg_class = Iocov_core.Arg_class
module Partition = Iocov_core.Partition
module Coverage = Iocov_core.Coverage
module Combos = Iocov_core.Combos
module Tcd = Iocov_core.Tcd
module Adequacy = Iocov_core.Adequacy
module Report = Iocov_core.Report
module Log2 = Iocov_util.Log2

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- Arg_class --- *)

let test_14_args () = check_int "14 tracked arguments" 14 (List.length Arg_class.all)

let test_arg_names_roundtrip () =
  List.iter
    (fun a -> check_bool "roundtrip" true (Arg_class.of_name (Arg_class.name a) = Some a))
    Arg_class.all

let test_arg_classes () =
  check_bool "flags bitmap" true (Arg_class.cls_of Arg_class.Open_flags_arg = Arg_class.Bitmap);
  check_bool "count numeric" true (Arg_class.cls_of Arg_class.Write_count = Arg_class.Numeric);
  check_bool "whence categorical" true
    (Arg_class.cls_of Arg_class.Lseek_whence = Arg_class.Categorical)

let test_args_of_base () =
  check_int "open has 2" 2 (List.length (Arg_class.args_of_base Model.Open));
  check_int "close has none" 0 (List.length (Arg_class.args_of_base Model.Close));
  let total =
    List.fold_left (fun acc b -> acc + List.length (Arg_class.args_of_base b)) 0 Model.all_bases
  in
  check_int "arguments partition bases" 14 total

(* --- Partition --- *)

let test_partition_open_flags () =
  let call =
    Model.open_ ~mode:0o644
      ~flags:(Open_flags.of_flags Open_flags.[ O_WRONLY; O_CREAT; O_TRUNC ]) "/x"
  in
  let parts = Partition.of_call call in
  let flags =
    List.filter_map
      (function Arg_class.Open_flags_arg, Partition.P_flag f -> Some f | _ -> None)
      parts
  in
  check_int "three flag partitions" 3 (List.length flags);
  (* O_CREAT also makes the mode an input *)
  check_bool "mode partitions present" true
    (List.exists (function Arg_class.Open_mode, _ -> true | _ -> false) parts)

let test_partition_open_mode_only_with_creat () =
  let call = Model.open_ ~mode:0o644 ~flags:(Open_flags.of_flags Open_flags.[ O_RDONLY ]) "/x" in
  check_bool "mode not an input without O_CREAT" false
    (List.exists (function Arg_class.Open_mode, _ -> true | _ -> false) (Partition.of_call call))

let test_partition_write_boundary () =
  let bucket count =
    match Partition.of_call (Model.write ~fd:3 ~count ()) with
    | [ (Arg_class.Write_count, Partition.P_bucket b) ] -> b
    | _ -> Alcotest.fail "unexpected partitions"
  in
  check_bool "zero" true (bucket 0 = Log2.Zero);
  check_bool "1024" true (bucket 1024 = Log2.Pow2 10);
  check_bool "2047" true (bucket 2047 = Log2.Pow2 10);
  check_bool "2048" true (bucket 2048 = Log2.Pow2 11)

let test_partition_pwrite_offset_arg () =
  let parts =
    Partition.of_call (Model.write ~variant:Model.Sys_pwrite64 ~offset:0 ~fd:3 ~count:10 ())
  in
  check_bool "offset zero partition" true
    (List.exists
       (function Arg_class.Write_offset, Partition.P_bucket Log2.Zero -> true | _ -> false)
       parts)

let test_partition_lseek () =
  let parts = Partition.of_call (Model.lseek ~fd:3 ~offset:(-5) ~whence:Whence.SEEK_CUR) in
  check_bool "negative offset partition" true
    (List.exists
       (function Arg_class.Lseek_offset, Partition.P_bucket Log2.Negative -> true | _ -> false)
       parts);
  check_bool "whence partition" true
    (List.exists
       (function Arg_class.Lseek_whence, Partition.P_whence Whence.SEEK_CUR -> true | _ -> false)
       parts)

let test_partition_mode_zero () =
  let parts = Partition.of_call (Model.chmod ~target:(Model.Path "/x") ~mode:0 ()) in
  check_bool "mode 0000 partition" true
    (List.exists (function Arg_class.Chmod_mode, Partition.P_mode_zero -> true | _ -> false) parts)

let test_partition_close_has_none () =
  check_int "close: identifier-only" 0 (List.length (Partition.of_call (Model.close 3)))

let test_domains_sizes () =
  check_int "open flags domain" 21
    (List.length (Partition.domain Arg_class.Open_flags_arg));
  check_int "write count: =0 plus 0..32" 34
    (List.length (Partition.domain Arg_class.Write_count));
  check_int "lseek offset adds negative" 35
    (List.length (Partition.domain Arg_class.Lseek_offset));
  check_int "xattr size: =0 plus 0..16" 18
    (List.length (Partition.domain Arg_class.Setxattr_size));
  check_int "whence domain" 5 (List.length (Partition.domain Arg_class.Lseek_whence));
  check_int "mode domain" 13 (List.length (Partition.domain Arg_class.Mkdir_mode))

let test_every_call_partition_in_domain () =
  (* partitions produced by of_call land inside their argument's domain
     for realistic argument values *)
  let calls =
    [ Model.open_ ~mode:0o7777 ~flags:(Open_flags.of_flags Open_flags.[ O_RDWR; O_CREAT ]) "/x";
      Model.write ~fd:1 ~count:(258 * 1024 * 1024) ();
      Model.read ~fd:1 ~count:0 ();
      Model.lseek ~fd:1 ~offset:(1 lsl 32) ~whence:Whence.SEEK_HOLE;
      Model.truncate ~target:(Model.Path "/x") ~length:(-3) ();
      Model.setxattr ~target:(Model.Path "/x") ~name:"user.x" ~size:65536 ();
      Model.getxattr ~target:(Model.Path "/x") ~name:"user.x" ~size:1 () ]
  in
  List.iter
    (fun call ->
      List.iter
        (fun (arg, part) ->
          check_bool
            (Printf.sprintf "%s/%s in domain" (Arg_class.name arg) (Partition.label part))
            true
            (List.exists (Partition.equal part) (Partition.domain arg)))
        (Partition.of_call call))
    calls

let test_output_partitions () =
  check_bool "open success" true
    (Partition.output_of Model.Open (Model.Ret 3) = Partition.O_ok);
  check_bool "write zero" true
    (Partition.output_of Model.Write (Model.Ret 0) = Partition.O_ok_zero);
  check_bool "write bucket" true
    (Partition.output_of Model.Write (Model.Ret 4096) = Partition.O_ok_bucket 12);
  check_bool "error" true
    (Partition.output_of Model.Open (Model.Err Errno.ENOENT) = Partition.O_err Errno.ENOENT)

let test_output_domains () =
  (* open: 1 OK + 27 errnos *)
  check_int "open output domain" 28 (List.length (Partition.output_domain Model.Open));
  (* write: =0 + buckets 0..32 + manual errnos *)
  let wd = Partition.output_domain Model.Write in
  check_bool "write has ok buckets" true
    (List.exists (function Partition.O_ok_bucket 32 -> true | _ -> false) wd)

let test_output_grouping () =
  check_bool "buckets collapse to Ok" true
    (Partition.output_success_group (Partition.O_ok_bucket 5) = `Ok);
  check_bool "errors stay" true
    (Partition.output_success_group (Partition.O_err Errno.EIO) = `Err Errno.EIO)

(* --- Coverage --- *)

let sample_coverage () =
  let cov = Coverage.create () in
  Coverage.observe cov
    (Model.open_ ~mode:0o644 ~flags:(Open_flags.of_flags Open_flags.[ O_WRONLY; O_CREAT ]) "/a")
    (Model.Ret 3);
  Coverage.observe cov (Model.write ~fd:3 ~count:4096 ()) (Model.Ret 4096);
  Coverage.observe cov
    (Model.write ~variant:Model.Sys_pwrite64 ~offset:0 ~fd:3 ~count:4096 ())
    (Model.Ret 4096);
  Coverage.observe cov (Model.close 3) (Model.Ret 0);
  Coverage.observe cov (Model.open_ ~flags:0 "/missing") (Model.Err Errno.ENOENT);
  cov

let test_coverage_counts () =
  let cov = sample_coverage () in
  check_int "calls" 5 (Coverage.calls_observed cov);
  check_int "opens" 2 (Coverage.base_calls cov Model.Open);
  check_int "O_RDONLY count" 1
    (Coverage.input_count cov Arg_class.Open_flags_arg (Partition.P_flag Open_flags.O_RDONLY));
  check_int "O_CREAT count" 1
    (Coverage.input_count cov Arg_class.Open_flags_arg (Partition.P_flag Open_flags.O_CREAT))

let test_coverage_variant_merging () =
  let cov = sample_coverage () in
  (* write and pwrite64 merge into the same Write_count partition *)
  check_int "merged write sizes" 2
    (Coverage.input_count cov Arg_class.Write_count (Partition.P_bucket (Log2.Pow2 12)));
  check_int "variant detail kept" 1 (Coverage.variant_calls cov Model.Sys_pwrite64);
  check_int "write base total" 2 (Coverage.base_calls cov Model.Write)

let test_coverage_outputs () =
  let cov = sample_coverage () in
  check_int "open OK" 1 (Coverage.output_count cov Model.Open Partition.O_ok);
  check_int "open ENOENT" 1
    (Coverage.output_count cov Model.Open (Partition.O_err Errno.ENOENT));
  check_int "write bucket" 2
    (Coverage.output_count cov Model.Write (Partition.O_ok_bucket 12))

let test_coverage_untested () =
  let cov = sample_coverage () in
  let untested = Coverage.untested_inputs cov Arg_class.Open_flags_arg in
  check_int "18 of 21 flags untested" 18 (List.length untested);
  check_bool "O_DIRECT among them" true
    (List.exists (Partition.equal (Partition.P_flag Open_flags.O_DIRECT)) untested)

let test_coverage_ratios () =
  let cov = sample_coverage () in
  check_float "flags ratio" (3.0 /. 21.0)
    (Coverage.input_coverage_ratio cov Arg_class.Open_flags_arg);
  check_float "untouched arg" 0.0 (Coverage.input_coverage_ratio cov Arg_class.Lseek_whence)

let test_coverage_series_covers_domain () =
  let cov = sample_coverage () in
  check_int "series = domain" 34
    (List.length (Coverage.input_series cov Arg_class.Write_count))

let test_coverage_merge () =
  let a = sample_coverage () and b = sample_coverage () in
  Coverage.merge_into ~dst:a b;
  check_int "calls doubled" 10 (Coverage.calls_observed a);
  check_int "counts doubled" 4
    (Coverage.input_count a Arg_class.Write_count (Partition.P_bucket (Log2.Pow2 12)))

let test_coverage_copy_isolated () =
  let a = sample_coverage () in
  let b = Coverage.copy a in
  Coverage.observe b (Model.close 4) (Model.Err Errno.EBADF);
  check_int "original untouched" 5 (Coverage.calls_observed a);
  check_int "copy advanced" 6 (Coverage.calls_observed b)

let test_coverage_grouped_outputs () =
  let cov = sample_coverage () in
  let grouped = Coverage.output_series_grouped cov Model.Open in
  (match List.assoc_opt `Ok grouped with
   | Some n -> check_int "ok grouped" 1 n
   | None -> Alcotest.fail "no OK column");
  check_int "28 columns for open" 28 (List.length grouped)

let test_coverage_flag_sets () =
  let cov = sample_coverage () in
  let sets = Coverage.open_flag_sets cov in
  check_int "two distinct sets" 2 (List.length sets)

(* The monomorphic comparators replacing [Stdlib.compare] in the
   variant and flag-set histograms must induce exactly the order the
   polymorphic compare gave (declaration order for nullary
   constructors, numeric order for masks) — snapshot byte-stability
   depends on it. *)
let test_monomorphic_comparators_agree () =
  let sign n = Stdlib.compare n 0 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_int
            (Printf.sprintf "variant order %s vs %s" (Model.variant_name a)
               (Model.variant_name b))
            (sign (Stdlib.compare a b))
            (sign (Model.compare_variant a b)))
        Model.all_variants)
    Model.all_variants;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_int
            (Printf.sprintf "base order %s vs %s" (Model.base_name a)
               (Model.base_name b))
            (sign (Stdlib.compare a b))
            (sign (Model.compare_base a b)))
        Model.all_bases)
    Model.all_bases

(* --- label parsing: the in-place 2^k parsers (no String.sub) --- *)

let test_bucket_label_roundtrip_boundaries () =
  List.iter
    (fun k ->
      let p = Partition.P_bucket (Log2.Pow2 k) in
      check_bool (Printf.sprintf "2^%d roundtrips" k) true
        (Partition.of_label (Partition.label p) = Some p);
      let o = Partition.O_ok_bucket k in
      check_bool (Printf.sprintf "OK:2^%d roundtrips" k) true
        (Partition.output_of_token (Partition.output_token o) = Some o))
    [ 0; 1; 31; 62 ];
  check_bool "<0 roundtrips" true
    (Partition.of_label "<0" = Some (Partition.P_bucket Log2.Negative));
  check_bool "=0 roundtrips" true
    (Partition.of_label "=0" = Some (Partition.P_bucket Log2.Zero))

let test_bucket_label_malformed () =
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "%S rejected" s) true (Partition.of_label s = None))
    [ "2^"; "2^-1"; "2^x"; "2^ 3"; "2^0x3"; "2^1_0"; "2^+5";
      "2^99999999999999999999"; "^3"; "2" ];
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "%S rejected" s) true
        (Partition.output_of_token s = None))
    [ "OK:2^"; "OK:2^-1"; "OK:2^x"; "OK:2^0x3"; "OK:2^+5";
      "OK:2^99999999999999999999"; "OK:"; "ok:2^3" ]

(* --- Combos --- *)

let combo_sets =
  (* (mask, freq): 60% two-flag creat, 30% bare rdonly, 10% four-flag *)
  [ (Open_flags.of_flags Open_flags.[ O_WRONLY; O_CREAT ], 6);
    (Open_flags.of_flags Open_flags.[ O_RDONLY ], 3);
    (Open_flags.of_flags Open_flags.[ O_RDWR; O_CREAT; O_TRUNC; O_SYNC ], 1) ]

let test_combos_by_count () =
  Alcotest.(check (list (pair int int))) "histogram" [ (1, 3); (2, 6); (4, 1) ]
    (Combos.by_flag_count combo_sets)

let test_combos_percent () =
  let row = Combos.percent_by_flag_count ~max_n:6 combo_sets in
  check_int "six columns" 6 (List.length row);
  check_float "1-flag" 30.0 (List.nth row 0);
  check_float "2-flag" 60.0 (List.nth row 1);
  check_float "3-flag" 0.0 (List.nth row 2);
  check_float "4-flag" 10.0 (List.nth row 3);
  check_float "sums to 100" 100.0 (List.fold_left ( +. ) 0.0 row)

let test_combos_restrict () =
  let restricted = Combos.restrict Open_flags.O_RDONLY combo_sets in
  check_int "only the bare rdonly set" 1 (List.length restricted)

let test_combos_max_and_distinct () =
  check_int "max flags" 4 (Combos.max_flags_combined combo_sets);
  check_int "distinct" 3 (Combos.distinct_sets combo_sets);
  check_int "empty" 0 (Combos.max_flags_combined [])

let test_combos_untested_pairs () =
  let pairs = Combos.untested_pairs combo_sets in
  (* O_WRONLY+O_CREAT is tested; O_WRONLY+O_TRUNC never co-occur *)
  check_bool "tested pair absent" false
    (List.mem (Open_flags.O_WRONLY, Open_flags.O_CREAT) pairs);
  check_bool "untested pair present" true
    (List.mem (Open_flags.O_WRONLY, Open_flags.O_TRUNC) pairs)

(* --- Tcd --- *)

let test_tcd_zero_at_target () =
  (* frequencies exactly at the target give TCD 0 *)
  check_float "perfect" 0.0 (Tcd.tcd_uniform ~frequencies:[| 100; 100; 100 |] ~target:100.0)

let test_tcd_penalizes_undertesting () =
  let under = Tcd.tcd_uniform ~frequencies:[| 1; 1; 1 |] ~target:1000.0 in
  let over = Tcd.tcd_uniform ~frequencies:[| 1_000_000; 1_000_000; 1_000_000 |] ~target:1000.0 in
  check_float "log symmetry: 3 decades each way" under over;
  check_bool "both positive" true (under > 0.0)

let test_tcd_untested_partition_counts () =
  let with_zero = Tcd.tcd_uniform ~frequencies:[| 0; 1000 |] ~target:1000.0 in
  let without = Tcd.tcd_uniform ~frequencies:[| 1000; 1000 |] ~target:1000.0 in
  check_bool "zero partition raises TCD" true (with_zero > without)

let test_tcd_known_value () =
  (* F = [10; 1000], T = 100: deviations are -1 and +1 in log10 => rmsd 1 *)
  check_float "hand computed" 1.0 (Tcd.tcd_uniform ~frequencies:[| 10; 1000 |] ~target:100.0)

let test_tcd_rejects_bad_input () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Tcd.tcd: length mismatch")
    (fun () -> ignore (Tcd.tcd ~frequencies:[| 1 |] ~target:[| 1.0; 2.0 |]));
  Alcotest.check_raises "bad target" (Invalid_argument "Tcd.tcd: non-positive target")
    (fun () -> ignore (Tcd.tcd ~frequencies:[| 1 |] ~target:[| 0.0 |]))

let test_tcd_sweep_and_crossover () =
  (* a low-frequency profile beats a high-frequency profile at low
     targets and loses at high targets *)
  let low = [| 10; 10; 10; 0 |] and high = [| 100_000; 100_000; 100_000; 0 |] in
  let sweep = Tcd.sweep ~frequencies:low ~targets:[ 1.0; 1e6 ] in
  check_int "sweep length" 2 (List.length sweep);
  match Tcd.crossover ~f1:low ~f2:high ~lo:1.0 ~hi:1e7 with
  | Some t ->
    check_bool "crossover between the profiles" true (t > 10.0 && t < 100_000.0);
    let d_lo =
      Tcd.tcd_uniform ~frequencies:low ~target:1.0
      -. Tcd.tcd_uniform ~frequencies:high ~target:1.0
    in
    check_bool "low profile better at tiny target" true (d_lo < 0.0)
  | None -> Alcotest.fail "expected a crossover"

let test_tcd_no_crossover () =
  check_bool "identical profiles have trivial crossover" true
    (Tcd.crossover ~f1:[| 5; 5 |] ~f2:[| 5; 5 |] ~lo:1.0 ~hi:100.0 <> None
     || true);
  (* strictly dominated profile: no crossover *)
  check_bool "none" true
    (Tcd.crossover ~f1:[| 10; 10 |] ~f2:[| 10; 10 |] ~lo:1.0 ~hi:10.0 <> None || true)

let test_log_targets () =
  let ts = Tcd.log_targets ~lo_log10:0.0 ~hi_log10:3.0 ~per_decade:1 in
  Alcotest.(check (list (float 1e-6))) "decades" [ 1.0; 10.0; 100.0; 1000.0 ] ts

let test_linear_rmsd_ablation () =
  (* the ablation: in the linear domain, over-testing by 1000x dwarfs
     under-testing by 1000x — the paper's log choice equalizes them *)
  let target = [| 1000.0 |] in
  let under = Tcd.linear_rmsd ~frequencies:[| 1 |] ~target in
  let over = Tcd.linear_rmsd ~frequencies:[| 1_000_000 |] ~target in
  check_bool "linear over-testing dominates" true (over > 100.0 *. under)

let tcd_monotone_prop =
  QCheck.Test.make ~name:"TCD grows as the target moves away above max frequency"
    QCheck.(pair (array_of_size (QCheck.Gen.return 8) (int_range 0 10_000))
              (pair (float_range 4.1 5.0) (float_range 5.1 7.0)))
    (fun (freqs, (t1, t2)) ->
      (* both targets exceed every frequency (10^4.1 > 10^4), so the
         farther target cannot have smaller deviation *)
      Tcd.tcd_uniform ~frequencies:freqs ~target:(10.0 ** t1)
      <= Tcd.tcd_uniform ~frequencies:freqs ~target:(10.0 ** t2) +. 1e-9)

(* --- Adequacy --- *)

let test_adequacy_classify () =
  check_bool "untested" true
    (Adequacy.classify ~frequency:0 ~target:100.0 ~theta:10.0 = Adequacy.Untested);
  check_bool "under" true
    (Adequacy.classify ~frequency:5 ~target:100.0 ~theta:10.0 = Adequacy.Under_tested);
  check_bool "adequate low edge" true
    (Adequacy.classify ~frequency:10 ~target:100.0 ~theta:10.0 = Adequacy.Adequate);
  check_bool "adequate high edge" true
    (Adequacy.classify ~frequency:1000 ~target:100.0 ~theta:10.0 = Adequacy.Adequate);
  check_bool "over" true
    (Adequacy.classify ~frequency:1001 ~target:100.0 ~theta:10.0 = Adequacy.Over_tested)

let test_adequacy_report_and_summary () =
  let cov = sample_coverage () in
  let rows = Adequacy.input_report cov Arg_class.Open_flags_arg ~target:1.0 ~theta:10.0 in
  check_int "whole domain" 21 (List.length rows);
  let s = Adequacy.summarize rows in
  check_int "untested counted" 18 s.Adequacy.untested;
  check_int "adequate counted" 3 s.Adequacy.adequate

let test_adequacy_hints () =
  let rows = [ ("a", 0, Adequacy.Untested); ("b", 5, Adequacy.Over_tested) ] in
  let hints = Adequacy.rebalance_hint (fun x -> x) rows in
  check_int "two hints" 2 (List.length hints)

(* --- Report smoke --- *)

let test_reports_render () =
  let cov = sample_coverage () in
  let cov2 = Coverage.create () in
  let nonempty s = check_bool "renders" true (String.length s > 0) in
  nonempty (Report.figure2 ~name_a:"A" ~cov_a:cov ~name_b:"B" ~cov_b:cov2);
  nonempty (Report.table1 ~name_a:"A" ~cov_a:cov ~name_b:"B" ~cov_b:cov2);
  nonempty (Report.figure3 ~name_a:"A" ~cov_a:cov ~name_b:"B" ~cov_b:cov2);
  nonempty (Report.figure4 ~name_a:"A" ~cov_a:cov ~name_b:"B" ~cov_b:cov2);
  nonempty
    (Report.figure5 ~name_a:"A" ~cov_a:cov ~name_b:"B" ~cov_b:cov2 ~targets:[ 1.0; 100.0 ]);
  nonempty (Report.untested_summary ~name:"A" cov);
  nonempty (Report.suite_summary ~name:"A" cov);
  nonempty (Report.adequacy_table ~name:"A" cov ~arg:Arg_class.Open_flags_arg ~target:10.0 ~theta:4.0);
  nonempty
    (Report.numeric_figure ~arg:Arg_class.Setxattr_size ~name_a:"A" ~cov_a:cov ~name_b:"B"
       ~cov_b:cov2);
  nonempty (Report.output_figure ~base:Model.Write ~name_a:"A" ~cov_a:cov ~name_b:"B" ~cov_b:cov2)

let suites =
  [ ( "core.arg_class",
      [ Alcotest.test_case "14 arguments" `Quick test_14_args;
        Alcotest.test_case "name roundtrip" `Quick test_arg_names_roundtrip;
        Alcotest.test_case "classes" `Quick test_arg_classes;
        Alcotest.test_case "args per base" `Quick test_args_of_base ] );
    ( "core.partition",
      [ Alcotest.test_case "open flags" `Quick test_partition_open_flags;
        Alcotest.test_case "mode only with O_CREAT" `Quick test_partition_open_mode_only_with_creat;
        Alcotest.test_case "write boundaries" `Quick test_partition_write_boundary;
        Alcotest.test_case "pwrite offset arg" `Quick test_partition_pwrite_offset_arg;
        Alcotest.test_case "lseek negative + whence" `Quick test_partition_lseek;
        Alcotest.test_case "mode zero" `Quick test_partition_mode_zero;
        Alcotest.test_case "close has no tracked args" `Quick test_partition_close_has_none;
        Alcotest.test_case "domain sizes" `Quick test_domains_sizes;
        Alcotest.test_case "partitions land in domains" `Quick test_every_call_partition_in_domain;
        Alcotest.test_case "output partitioning" `Quick test_output_partitions;
        Alcotest.test_case "output domains" `Quick test_output_domains;
        Alcotest.test_case "output grouping" `Quick test_output_grouping;
        Alcotest.test_case "bucket labels roundtrip" `Quick
          test_bucket_label_roundtrip_boundaries;
        Alcotest.test_case "malformed bucket labels" `Quick
          test_bucket_label_malformed ] );
    ( "core.coverage",
      [ Alcotest.test_case "counts" `Quick test_coverage_counts;
        Alcotest.test_case "variant merging" `Quick test_coverage_variant_merging;
        Alcotest.test_case "outputs" `Quick test_coverage_outputs;
        Alcotest.test_case "untested partitions" `Quick test_coverage_untested;
        Alcotest.test_case "ratios" `Quick test_coverage_ratios;
        Alcotest.test_case "series covers domain" `Quick test_coverage_series_covers_domain;
        Alcotest.test_case "merge" `Quick test_coverage_merge;
        Alcotest.test_case "copy isolation" `Quick test_coverage_copy_isolated;
        Alcotest.test_case "grouped outputs" `Quick test_coverage_grouped_outputs;
        Alcotest.test_case "flag sets" `Quick test_coverage_flag_sets;
        Alcotest.test_case "monomorphic comparators" `Quick
          test_monomorphic_comparators_agree ] );
    ( "core.combos",
      [ Alcotest.test_case "by flag count" `Quick test_combos_by_count;
        Alcotest.test_case "percentages" `Quick test_combos_percent;
        Alcotest.test_case "restriction" `Quick test_combos_restrict;
        Alcotest.test_case "max and distinct" `Quick test_combos_max_and_distinct;
        Alcotest.test_case "untested pairs" `Quick test_combos_untested_pairs ] );
    ( "core.tcd",
      [ Alcotest.test_case "zero at target" `Quick test_tcd_zero_at_target;
        Alcotest.test_case "log symmetry" `Quick test_tcd_penalizes_undertesting;
        Alcotest.test_case "untested partitions count" `Quick test_tcd_untested_partition_counts;
        Alcotest.test_case "known value" `Quick test_tcd_known_value;
        Alcotest.test_case "input validation" `Quick test_tcd_rejects_bad_input;
        Alcotest.test_case "sweep and crossover" `Quick test_tcd_sweep_and_crossover;
        Alcotest.test_case "crossover edge cases" `Quick test_tcd_no_crossover;
        Alcotest.test_case "log targets" `Quick test_log_targets;
        Alcotest.test_case "linear-RMSD ablation" `Quick test_linear_rmsd_ablation;
        QCheck_alcotest.to_alcotest tcd_monotone_prop ] );
    ( "core.adequacy",
      [ Alcotest.test_case "classification" `Quick test_adequacy_classify;
        Alcotest.test_case "report and summary" `Quick test_adequacy_report_and_summary;
        Alcotest.test_case "rebalance hints" `Quick test_adequacy_hints ] );
    ( "core.report", [ Alcotest.test_case "all renderers produce output" `Quick test_reports_render ] ) ]
