(* Tests for the parallel sharded analysis pipeline: the bounded
   channel, the domain pool, merge algebra, and the determinism
   contract — parallel replay byte-identical to sequential at any job
   count, over in-memory, text, and binary trace paths. *)

open Iocov_syscall
module Prng = Iocov_util.Prng
module Event = Iocov_trace.Event
module Filter = Iocov_trace.Filter
module Format_io = Iocov_trace.Format_io
module Binary_io = Iocov_trace.Binary_io
module Coverage = Iocov_core.Coverage
module Snapshot = Iocov_core.Snapshot
module Metrics = Iocov_obs.Metrics
module Chan = Iocov_par.Chan
module Pool = Iocov_par.Pool
module Replay = Iocov_par.Replay
module Runner = Iocov_suites.Runner

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- random traces, deterministic in the seed --- *)

let synth_call rng path fd =
  match Prng.int rng 7 with
  | 0 ->
    let flags =
      Prng.choose rng
        [| Open_flags.of_flags Open_flags.[ O_RDONLY ];
           Open_flags.of_flags Open_flags.[ O_RDWR; O_CREAT ];
           Open_flags.of_flags Open_flags.[ O_WRONLY; O_APPEND ] |]
    in
    (Model.open_ ~flags ~mode:0o644 path, Model.Ret fd)
  | 1 -> (Model.open_ ~flags:(Open_flags.of_flags Open_flags.[ O_RDONLY ]) path,
          Model.Err Errno.ENOENT)
  | 2 ->
    let count = Prng.pow2_size rng ~max_log2:16 in
    (Model.read ~fd ~count (), Model.Ret count)
  | 3 ->
    let count = Prng.pow2_size rng ~max_log2:18 in
    (Model.write ~variant:Model.Sys_pwrite64 ~offset:(Prng.int rng 4096) ~fd ~count (),
     Model.Ret count)
  | 4 ->
    (Model.lseek ~fd ~offset:(Prng.int rng 100_000)
       ~whence:(Prng.choose rng Whence.[| SEEK_SET; SEEK_CUR; SEEK_END |]),
     Model.Ret 0)
  | 5 -> (Model.truncate ~target:(Model.Path path) ~length:(Prng.int rng 65536) (),
          Model.Ret 0)
  | _ -> (Model.chmod ~target:(Model.Path path) ~mode:(Prng.int rng 0o7777) (),
          Model.Ret 0)

let synth_events ~seed n =
  let rng = Prng.create ~seed in
  List.init n (fun seq ->
      let inside = Prng.chance rng 0.75 in
      let path =
        if inside then Printf.sprintf "/mnt/test/d%d/f%d" (Prng.int rng 8) (Prng.int rng 200)
        else Printf.sprintf "/etc/noise%d" (Prng.int rng 50)
      in
      let call, outcome = synth_call rng path (3 + Prng.int rng 20) in
      {
        Event.seq;
        timestamp_ns = seq * 31;
        pid = 100 + Prng.int rng 4;
        comm = "test";
        payload = Event.Tracked call;
        outcome;
        path_hint = (if Prng.chance rng 0.95 then Some path else None);
      })

(* the sequential reference: per-event filter + observe, no pipeline *)
let sequential_coverage filter events =
  let cov = Coverage.create () in
  let kept = ref 0 in
  List.iter
    (fun e ->
      if Filter.keeps filter e then begin
        incr kept;
        match e.Event.payload with
        | Event.Tracked call -> Coverage.observe cov call e.Event.outcome
        | Event.Aux _ -> ()
      end)
    events;
  (cov, !kept)

(* --- Chan --- *)

let test_chan_fifo () =
  let c = Chan.create ~capacity:4 in
  List.iter (Chan.push c) [ 1; 2; 3 ];
  check_int "length" 3 (Chan.length c);
  Chan.close c;
  let p1 = Chan.pop c in
  let p2 = Chan.pop c in
  let p3 = Chan.pop c in
  let p4 = Chan.pop c in
  check_bool "drains in order" true
    ([ p1; p2; p3; p4 ] = [ Some 1; Some 2; Some 3; None ]);
  Chan.close c (* idempotent *)

let test_chan_closed_push () =
  let c = Chan.create ~capacity:2 in
  Chan.close c;
  Alcotest.check_raises "push after close" Chan.Closed (fun () -> Chan.push c 1)

let test_chan_capacity_positive () =
  check_bool "zero capacity rejected" true
    (match Chan.create ~capacity:0 with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_chan_cross_domain () =
  (* capacity far below the item count forces both full- and
     empty-side blocking; the sum check proves no loss or duplication *)
  let c = Chan.create ~capacity:3 in
  let n = 10_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          Chan.push c i
        done;
        Chan.close c)
  in
  let sum = ref 0 and count = ref 0 in
  let rec drain () =
    match Chan.pop c with
    | Some v ->
      sum := !sum + v;
      incr count;
      drain ()
    | None -> ()
  in
  drain ();
  Domain.join producer;
  check_int "all items" n !count;
  check_int "sum preserved" (n * (n + 1) / 2) !sum

(* --- Pool --- *)

let test_pool_shard_order () =
  let pool = Pool.create ~jobs:3 () in
  let results = Pool.run pool (fun ~shard -> shard * 10) in
  check_bool "results in shard order" true (results = [| 0; 10; 20 |])

let test_pool_jobs_one_inline () =
  let pool = Pool.create ~jobs:1 () in
  let domain_before = Domain.self () in
  let results = Pool.run pool (fun ~shard -> (shard, Domain.self ())) in
  check_int "one shard" 1 (Array.length results);
  check_bool "runs on the calling domain" true (snd results.(0) = domain_before)

let test_pool_exception_propagates () =
  let pool = Pool.create ~jobs:2 () in
  Alcotest.check_raises "shard failure re-raised" (Failure "shard-0")
    (fun () ->
      ignore
        (Pool.run pool (fun ~shard ->
             if shard = 0 then failwith "shard-0" else ())))

let test_pool_default_jobs () =
  check_bool "auto jobs positive" true (Pool.jobs (Pool.create ()) >= 1);
  check_int "non-positive means auto" (Pool.jobs (Pool.create ()))
    (Pool.jobs (Pool.create ~jobs:0 ()))

(* --- merge algebra: the determinism contract's foundation --- *)

let random_coverage ~seed n =
  let rng = Prng.create ~seed in
  let cov = Coverage.create () in
  for i = 0 to n - 1 do
    let call, outcome = synth_call rng (Printf.sprintf "/mnt/test/f%d" i) (3 + (i mod 9)) in
    Coverage.observe cov call outcome
  done;
  cov

let merged a b =
  let dst = Coverage.create () in
  Coverage.merge_into ~dst a;
  Coverage.merge_into ~dst b;
  dst

let test_merge_commutative () =
  let a = random_coverage ~seed:11 400 and b = random_coverage ~seed:22 300 in
  check_string "a+b = b+a"
    (Snapshot.to_string (merged a b))
    (Snapshot.to_string (merged b a))

let test_merge_associative () =
  let a = random_coverage ~seed:31 200
  and b = random_coverage ~seed:32 250
  and c = random_coverage ~seed:33 300 in
  check_string "(a+b)+c = a+(b+c)"
    (Snapshot.to_string (merged (merged a b) c))
    (Snapshot.to_string (merged a (merged b c)))

(* --- Replay: parallel vs sequential byte-equality --- *)

let test_replay_matches_sequential () =
  let events = synth_events ~seed:5 5_000 in
  let filter = Filter.mount_point "/mnt/test" in
  let ref_cov, ref_kept = sequential_coverage filter events in
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs () in
      (* small batches force many work items per shard *)
      let o = Replay.analyze_events ~pool ~batch:64 ~filter events in
      check_bool
        (Printf.sprintf "coverage identical at jobs=%d" jobs)
        true
        (Snapshot.equal ref_cov o.Replay.coverage);
      check_int (Printf.sprintf "kept at jobs=%d" jobs) ref_kept o.Replay.kept;
      check_int (Printf.sprintf "events at jobs=%d" jobs) 5_000 o.Replay.events;
      check_int (Printf.sprintf "shards at jobs=%d" jobs) jobs o.Replay.shards)
    [ 1; 2; 4 ]

let with_temp_file f =
  let path = Filename.temp_file "iocov_par" ".trace" in
  Fun.protect (fun () -> f path) ~finally:(fun () -> Sys.remove path)

let test_replay_text_channel () =
  let events = synth_events ~seed:6 2_000 in
  let filter = Filter.mount_point "/mnt/test" in
  let ref_cov, ref_kept = sequential_coverage filter events in
  with_temp_file (fun path ->
      Out_channel.with_open_text path (fun oc ->
          List.iter (Format_io.sink_channel oc) events);
      List.iter
        (fun jobs ->
          let ic = open_in_bin path in
          let pool = Pool.create ~jobs () in
          let result = Replay.analyze_channel ~pool ~batch:128 ~filter ic in
          close_in ic;
          match result with
          | Error msg -> Alcotest.failf "text replay failed: %s" msg
          | Ok o ->
            check_bool
              (Printf.sprintf "text coverage identical at jobs=%d" jobs)
              true
              (Snapshot.equal ref_cov o.Replay.coverage);
            check_int (Printf.sprintf "text kept at jobs=%d" jobs) ref_kept o.Replay.kept)
        [ 1; 3 ])

let test_replay_binary_channel () =
  let events = synth_events ~seed:7 2_000 in
  let filter = Filter.mount_point "/mnt/test" in
  let ref_cov, ref_kept = sequential_coverage filter events in
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      let w = Binary_io.writer oc in
      List.iter (Binary_io.sink w) events;
      Binary_io.flush w;
      close_out oc;
      List.iter
        (fun jobs ->
          let ic = open_in_bin path in
          let pool = Pool.create ~jobs () in
          let result = Replay.analyze_channel ~pool ~batch:128 ~filter ic in
          close_in ic;
          match result with
          | Error msg -> Alcotest.failf "binary replay failed: %s" msg
          | Ok o ->
            check_bool
              (Printf.sprintf "binary coverage identical at jobs=%d" jobs)
              true
              (Snapshot.equal ref_cov o.Replay.coverage);
            check_int (Printf.sprintf "binary kept at jobs=%d" jobs) ref_kept o.Replay.kept)
        [ 1; 2 ])

let test_replay_text_error_line () =
  (* parse failures must report the lowest offending line, exactly as
     the sequential reader does *)
  let events = synth_events ~seed:8 50 in
  with_temp_file (fun path ->
      Out_channel.with_open_text path (fun oc ->
          List.iteri
            (fun i e ->
              if i = 20 then output_string oc "this is not a trace record\n";
              Format_io.sink_channel oc e)
            events);
      let sequential_err =
        let ic = open_in_bin path in
        let r = Format_io.fold_channel ic ~init:() ~f:(fun () _ -> ()) in
        close_in ic;
        match r with Ok () -> Alcotest.fail "expected a parse error" | Error m -> m
      in
      List.iter
        (fun jobs ->
          let ic = open_in_bin path in
          let pool = Pool.create ~jobs () in
          let result = Replay.analyze_channel ~pool ~batch:8 ~filter:(Filter.mount_point "/mnt/test") ic in
          close_in ic;
          match result with
          | Ok _ -> Alcotest.fail "expected a parse error"
          | Error msg ->
            check_string (Printf.sprintf "error agrees at jobs=%d" jobs) sequential_err msg)
        [ 1; 2 ])

let test_session_matches_analyze () =
  let events = synth_events ~seed:9 3_000 in
  let filter = Filter.mount_point "/mnt/test" in
  let direct = Replay.analyze_events ~pool:(Pool.create ~jobs:1 ()) ~filter events in
  List.iter
    (fun jobs ->
      let s = Replay.session ~pool:(Pool.create ~jobs ()) ~batch:100 ~filter () in
      List.iter (Replay.sink s) events;
      let o = Replay.finish s in
      check_bool
        (Printf.sprintf "session coverage identical at jobs=%d" jobs)
        true
        (Snapshot.equal direct.Replay.coverage o.Replay.coverage);
      check_int (Printf.sprintf "session kept at jobs=%d" jobs) direct.Replay.kept
        o.Replay.kept)
    [ 1; 2 ]

(* --- keep_all: batched filtering preserves results and counters --- *)

let filter_counter result =
  Metrics.counter Metrics.default "iocov_filter_events_total"
    ~labels:[ ("result", result) ]

let test_keep_all_agrees_with_keeps () =
  let events = synth_events ~seed:10 1_000 in
  let filter = Filter.mount_point "/mnt/test" in
  let one_by_one = List.filter (Filter.keeps filter) events in
  let batched = Filter.keep_all filter events in
  check_int "same kept count" (List.length one_by_one) (List.length batched);
  check_bool "same kept events in order" true
    (List.for_all2 (fun a b -> a == b) one_by_one batched)

let test_keep_all_counters_match_per_event () =
  let events = synth_events ~seed:12 800 in
  let filter = Filter.mount_point "/mnt/test" in
  let kept_c = filter_counter "kept"
  and no_hint_c = filter_counter "dropped_no_hint"
  and no_match_c = filter_counter "dropped_no_match" in
  let read () =
    (Metrics.Counter.value kept_c, Metrics.Counter.value no_hint_c,
     Metrics.Counter.value no_match_c)
  in
  let k0, h0, m0 = read () in
  (* [fold] is the metered per-event path; [keeps] is pure by design *)
  ignore (Filter.fold filter ~init:() ~f:(fun () _ -> ()) events);
  let k1, h1, m1 = read () in
  ignore (Filter.keep_all filter events);
  let k2, h2, m2 = read () in
  check_int "kept delta equal" (k1 - k0) (k2 - k1);
  check_int "no-hint delta equal" (h1 - h0) (h2 - h1);
  check_int "no-match delta equal" (m1 - m0) (m2 - m1)

(* --- the whole stack: Runner with jobs --- *)

let test_runner_jobs_parity () =
  let sequential = Runner.run ~seed:4 ~scale:0.05 Runner.Ltp in
  let parallel = Runner.run ~seed:4 ~scale:0.05 ~jobs:2 Runner.Ltp in
  check_bool "coverage identical" true
    (Snapshot.equal sequential.Runner.coverage parallel.Runner.coverage);
  check_int "events kept identical" sequential.Runner.events_kept
    parallel.Runner.events_kept;
  check_int "events total identical" sequential.Runner.events_total
    parallel.Runner.events_total;
  check_int "failures identical"
    (List.length sequential.Runner.failures)
    (List.length parallel.Runner.failures)

let suites =
  [ ( "par.chan",
      [ Alcotest.test_case "fifo and close" `Quick test_chan_fifo;
        Alcotest.test_case "push after close" `Quick test_chan_closed_push;
        Alcotest.test_case "capacity validated" `Quick test_chan_capacity_positive;
        Alcotest.test_case "cross-domain transfer" `Quick test_chan_cross_domain ] );
    ( "par.pool",
      [ Alcotest.test_case "shard order" `Quick test_pool_shard_order;
        Alcotest.test_case "jobs=1 runs inline" `Quick test_pool_jobs_one_inline;
        Alcotest.test_case "exception propagates" `Quick test_pool_exception_propagates;
        Alcotest.test_case "default jobs" `Quick test_pool_default_jobs ] );
    ( "par.merge",
      [ Alcotest.test_case "commutative" `Quick test_merge_commutative;
        Alcotest.test_case "associative" `Quick test_merge_associative ] );
    ( "par.replay",
      [ Alcotest.test_case "in-memory vs sequential" `Quick test_replay_matches_sequential;
        Alcotest.test_case "text channel" `Quick test_replay_text_channel;
        Alcotest.test_case "binary channel" `Quick test_replay_binary_channel;
        Alcotest.test_case "text error line" `Quick test_replay_text_error_line;
        Alcotest.test_case "session" `Quick test_session_matches_analyze ] );
    ( "par.filter",
      [ Alcotest.test_case "keep_all agrees" `Quick test_keep_all_agrees_with_keeps;
        Alcotest.test_case "keep_all counters" `Quick test_keep_all_counters_match_per_event ] );
    ( "par.runner",
      [ Alcotest.test_case "jobs=2 parity" `Quick test_runner_jobs_parity ] ) ]
