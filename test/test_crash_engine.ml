(* Tests for the crash-consistency scenario engine (DESIGN.md §17):
   journal emission, bounded crash-state enumeration (property-checked
   against a brute-force enumerator), recovery replay with faults armed
   across the crash boundary, outcome classification, the
   fsync-durability oracle differential, and the crash block of the
   dense plan / coverage / snapshot layers. *)

module Engine = Iocov_crash.Engine
module Journal = Iocov_vfs.Journal
module Config = Iocov_vfs.Config
module Fault = Iocov_vfs.Fault
module Partition = Iocov_core.Partition
module Plan = Iocov_core.Plan
module Coverage = Iocov_core.Coverage
module Snapshot = Iocov_core.Snapshot

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let config_of mode = Config.with_journal_mode mode Config.default

let run_named ?faults name mode =
  let scenario =
    match Engine.find_scenario name with
    | Some s -> s
    | None -> Alcotest.failf "no built-in scenario %s" name
  in
  let config =
    match faults with
    | None -> config_of mode
    | Some fs -> Config.with_faults fs (config_of mode)
  in
  Engine.execute ~config scenario

(* --- journal emission --- *)

let test_journal_emission () =
  let run = run_named "append-fsync" Config.Ordered in
  let records = run.Engine.run_records in
  check_bool "baseline precedes the body" true (run.Engine.run_b0 > 0);
  check_bool "body journaled" true (Array.length records > run.Engine.run_b0);
  let body = Array.sub records run.Engine.run_b0 (Array.length records - run.Engine.run_b0) in
  let has p = Array.exists p body in
  check_bool "data record present" true
    (has (function Journal.Data _ -> true | _ -> false));
  check_bool "fsync barrier present" true
    (has (function
       | Journal.Barrier { scope = Journal.Ino _; _ } -> true
       | _ -> false));
  (* the setup's closing sync is the last baseline record *)
  (match records.(run.Engine.run_b0 - 1) with
   | Journal.Barrier { scope = Journal.All; _ } -> ()
   | r -> Alcotest.failf "baseline ends with %s" (Journal.record_to_string r))

(* --- enumeration shape --- *)

let positions_of states = List.map Engine.state_positions states

let test_window_zero_is_prefixes () =
  let run = run_named "append-fsync" Config.Writeback in
  let records = run.Engine.run_records and b0 = run.Engine.run_b0 in
  let states =
    Engine.enumerate_states ~mode:Config.Writeback ~records ~b0 ~window:0
      ~torn:false ~fsync_skips_data:false ~block_size:4096 ()
  in
  (* with no reordering window every state is a pure log prefix (minus
     barrier positions, which have no image of their own) *)
  List.iter
    (fun s ->
      let ps = Engine.state_positions s in
      let expect =
        List.filter
          (fun p ->
            match records.(p) with Journal.Barrier _ -> false | _ -> true)
          (List.init (s.Engine.st_crash_point - b0) (fun k -> b0 + k))
      in
      check_bool "prefix state" true (ps = expect))
    states;
  (* one state per distinct prefix: crash points on either side of a
     barrier collapse, since the barrier has no image of its own *)
  let barriers =
    Array.fold_left
      (fun (i, n) r ->
        (i + 1, if i >= b0 && (match r with Journal.Barrier _ -> true | _ -> false)
                then n + 1 else n))
      (0, 0) records
    |> snd
  in
  check_int "one state per distinct prefix"
    (Array.length records - b0 + 1 - barriers)
    (List.length states)

let test_enumeration_dedups () =
  List.iter
    (fun mode ->
      let run = run_named "rename-replace" mode in
      let states =
        Engine.enumerate_states ~mode:run.Engine.run_config.Config.journal_mode
          ~records:run.Engine.run_records ~b0:run.Engine.run_b0 ~window:3
          ~torn:true ~fsync_skips_data:false ~block_size:4096 ()
      in
      let keys =
        List.map (fun s -> s.Engine.st_persisted) states
      in
      check_int "no duplicate persisted sets" (List.length keys)
        (List.length (List.sort_uniq compare keys)))
    Config.all_journal_modes

let test_bound_monotone () =
  let run = run_named "append-fsync" Config.Writeback in
  let count w =
    List.length
      (Engine.enumerate_states ~mode:Config.Writeback
         ~records:run.Engine.run_records ~b0:run.Engine.run_b0 ~window:w
         ~torn:false ~fsync_skips_data:false ~block_size:4096 ())
  in
  let c0 = count 0 and c2 = count 2 and c6 = count 6 in
  check_bool "wider bound, no fewer states" true (c0 <= c2 && c2 <= c6)

(* --- brute-force differential (unit + property) --- *)

let states_equal a b =
  List.sort_uniq compare (positions_of a) = List.sort_uniq compare (positions_of b)

let test_bounded_equals_brute_force_builtin () =
  List.iter
    (fun mode ->
      let run = run_named "overwrite-prefix" mode in
      let records = run.Engine.run_records in
      (* keep the brute-force power set tractable *)
      let b0 = max run.Engine.run_b0 (Array.length records - 6) in
      List.iter
        (fun window ->
          let bounded =
            Engine.enumerate_states ~mode ~records ~b0 ~window ~torn:false
              ~fsync_skips_data:false ~block_size:4096 ()
          in
          let brute =
            Engine.brute_force_states ~mode ~records ~b0 ~window
              ~fsync_skips_data:false ()
          in
          check_bool
            (Printf.sprintf "%s window %d"
               (Config.journal_mode_to_string mode) window)
            true
            (states_equal bounded brute))
        [ 0; 2; Array.length records ])
    Config.all_journal_modes

(* Random synthetic journals: the records need no semantic coherence —
   only the enumerators' agreement on reachable persisted sets is under
   test. *)
let record_gen =
  QCheck.Gen.(
    frequency
      [ (4, map2 (fun ino len ->
             Journal.Data { ino; off = 0; len; fill = 'x' })
           (int_range 1 3) (int_range 1 9000));
        (2, map2 (fun ino size -> Journal.Size { ino; size })
           (int_range 1 3) (int_range 0 9000));
        (1, map (fun ino -> Journal.Mode { ino; mode = 0o600 }) (int_range 1 3));
        (1, return (Journal.Barrier { scope = Journal.All; data_only = false }));
        (2, map2 (fun ino data_only ->
             Journal.Barrier { scope = Journal.Ino ino; data_only })
           (int_range 1 3) bool) ])

let journal_gen =
  QCheck.Gen.(int_range 0 6 >>= fun n -> array_size (return n) record_gen)

let enumeration_matches_brute_force =
  QCheck.Test.make ~count:300
    ~name:"bounded enumeration = brute force on small logs"
    (QCheck.make
       ~print:(fun (records, _, _) ->
         String.concat "; "
           (Array.to_list (Array.map Journal.record_to_string records)))
       QCheck.Gen.(
         triple journal_gen (int_range 0 7) (oneofl Config.all_journal_modes)))
    (fun (records, window, mode) ->
      let bounded =
        Engine.enumerate_states ~mode ~records ~b0:0 ~window ~torn:false
          ~fsync_skips_data:false ~block_size:4096 ()
      in
      let brute =
        Engine.brute_force_states ~mode ~records ~b0:0 ~window
          ~fsync_skips_data:false ()
      in
      states_equal bounded brute)

(* --- oracles --- *)

let test_oracle_clean_without_faults () =
  List.iter
    (fun mode ->
      List.iter
        (fun sc ->
          let report =
            Engine.run_scenario ~window:3 ~config:(config_of mode) sc
          in
          check_int
            (Printf.sprintf "%s/%s violation-free" sc.Engine.sc_name
               (Config.journal_mode_to_string mode))
            0
            (List.length report.Engine.rp_violations))
        Engine.scenarios)
    Config.all_journal_modes

let test_oracle_catches_fsync_skips_data () =
  (* the differential's positive direction: with the buggy fsync armed
     the enumerator admits states that drop barrier-covered data, and
     the durability oracle must flag every one *)
  let config =
    Config.with_faults [ Fault.Fsync_skips_data ] (config_of Config.Writeback)
  in
  let scenario = Option.get (Engine.find_scenario "append-fsync") in
  let report = Engine.run_scenario ~window:6 ~config scenario in
  check_bool "durability violations reported" true
    (report.Engine.rp_violations <> [])

(* --- faults armed across the crash boundary --- *)

let test_fault_survives_recovery () =
  (* [Creat_mode_ignored] fires while the workload runs (the journal
     records the buggy mode-0 inode), and the same faulted config is
     live in every materialized recovery image — the post-crash reopen
     as the unprivileged owner must hit the fault's consequence
     ([EACCES]) in every state where the file recovered at all. *)
  let scenario =
    {
      Engine.sc_name = "faulted-creat";
      sc_mount = "/mnt/crash";
      sc_uid = Some (1000, 1000);
      sc_setup = [];
      sc_body =
        [ Engine.Creat "/mnt/crash/secret";
          Engine.Write ("/mnt/crash/secret", 0, 4096);
          Engine.Fsync "/mnt/crash/secret" ];
    }
  in
  let config =
    Config.with_faults [ Fault.Creat_mode_ignored ] (config_of Config.Ordered)
  in
  let report = Engine.run_scenario ~window:2 ~config scenario in
  let count o = List.assoc o report.Engine.rp_tally in
  check_bool "reopen fails in recovered states" true
    (count Partition.C_errno > 0);
  check_int "no state recovers a readable file" 0 (count Partition.C_recovered);
  check_int "no state loses durability" 0 (List.length report.Engine.rp_violations)

(* --- classification --- *)

let test_outcome_taxonomy_reachable () =
  let outcomes = Hashtbl.create 8 in
  List.iter
    (fun mode ->
      List.iter
        (fun sc ->
          let r = Engine.run_scenario ~window:2 ~config:(config_of mode) sc in
          List.iter
            (fun (o, n) -> if n > 0 then Hashtbl.replace outcomes o ())
            r.Engine.rp_tally)
        Engine.scenarios)
    Config.all_journal_modes;
  check_int "all five outcome cells reachable over the built-ins" 5
    (Hashtbl.length outcomes)

let test_tally_accounts_for_all_classifications () =
  let r =
    Engine.run_scenario ~window:2 ~config:(config_of Config.Writeback)
      (Option.get (Engine.find_scenario "mkdir-tree"))
  in
  check_int "tally sums to classified"
    r.Engine.rp_classified
    (List.fold_left (fun a (_, n) -> a + n) 0 r.Engine.rp_tally)

(* --- plan / coverage / snapshot plumbing --- *)

let test_plan_crash_block () =
  check_int "plan grew by the crash block"
    (Plan.crash_off + (Plan.crash_mode_count * Plan.crash_outcome_count))
    Plan.total;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun m ->
      List.iter
        (fun o ->
          let id = Plan.crash_cell m o in
          check_bool "cell id in the crash block" true
            (id >= Plan.crash_off && id < Plan.total);
          (match Plan.cells.(id) with
           | Plan.Cell_crash (m', o') ->
             check_bool "bijective" true (m = m' && o = o')
           | _ -> Alcotest.fail "crash id maps to a non-crash cell");
          Hashtbl.replace seen id ())
        Partition.all_crash_outcomes)
    Partition.all_crash_modes;
  check_int "all crash cells distinct"
    (Plan.crash_mode_count * Plan.crash_outcome_count)
    (Hashtbl.length seen)

let test_coverage_crash_counts () =
  let cov = Coverage.create () in
  Coverage.add_crash cov Partition.CM_ordered Partition.C_torn 3;
  Coverage.add_crash cov Partition.CM_ordered Partition.C_torn 2;
  Coverage.add_crash cov Partition.CM_journaled Partition.C_lost 1;
  check_int "accumulated" 5
    (Coverage.crash_count cov Partition.CM_ordered Partition.C_torn);
  check_int "observed total" 6 (Coverage.crash_observed cov);
  check_int "series spans the full block" 15
    (List.length (Coverage.crash_series cov));
  let merged = Coverage.create () in
  Coverage.merge_into ~dst:merged cov;
  check_int "merge carries crash cells" 5
    (Coverage.crash_count merged Partition.CM_ordered Partition.C_torn)

let test_snapshot_roundtrip_with_crash () =
  let cov = Coverage.create () in
  Coverage.add_crash cov Partition.CM_writeback Partition.C_stale 7;
  Coverage.add_crash cov Partition.CM_journaled Partition.C_errno 2;
  let text = Snapshot.to_string cov in
  match Snapshot.of_string text with
  | Error msg -> Alcotest.failf "reparse: %s" msg
  | Ok cov' ->
    check_bool "round-trips" true (Snapshot.equal cov cov');
    check_int "counts preserved" 7
      (Coverage.crash_count cov' Partition.CM_writeback Partition.C_stale)

let test_snapshot_v1_compat () =
  (* runs that never touch the crash engine must keep the v1 byte
     format: no crash lines at all *)
  let cov = Coverage.create () in
  Coverage.observe cov
    (Iocov_syscall.Model.read ~fd:3 ~count:512 ())
    (Iocov_syscall.Model.Ret 512);
  let text = Snapshot.to_string cov in
  check_bool "no crash section" false
    (let nn = String.length "crash " and nh = String.length text in
     let rec go i =
       i + nn <= nh && (String.sub text i nn = "crash " || go (i + 1))
     in
     go 0)

let suites =
  [ ( "crash-engine",
      [ Alcotest.test_case "journal emission" `Quick test_journal_emission;
        Alcotest.test_case "window 0 = prefixes" `Quick test_window_zero_is_prefixes;
        Alcotest.test_case "enumeration dedups" `Quick test_enumeration_dedups;
        Alcotest.test_case "bound monotone" `Quick test_bound_monotone;
        Alcotest.test_case "bounded = brute force (built-ins)" `Quick
          test_bounded_equals_brute_force_builtin;
        QCheck_alcotest.to_alcotest enumeration_matches_brute_force;
        Alcotest.test_case "oracle clean without faults" `Slow
          test_oracle_clean_without_faults;
        Alcotest.test_case "oracle catches Fsync_skips_data" `Quick
          test_oracle_catches_fsync_skips_data;
        Alcotest.test_case "fault armed across the crash boundary" `Quick
          test_fault_survives_recovery;
        Alcotest.test_case "all outcomes reachable" `Slow
          test_outcome_taxonomy_reachable;
        Alcotest.test_case "tally accounts for classifications" `Quick
          test_tally_accounts_for_all_classifications ] );
    ( "crash-plan",
      [ Alcotest.test_case "plan crash block" `Quick test_plan_crash_block;
        Alcotest.test_case "coverage crash counters" `Quick
          test_coverage_crash_counts;
        Alcotest.test_case "snapshot round-trip" `Quick
          test_snapshot_roundtrip_with_crash;
        Alcotest.test_case "snapshot v1 compatibility" `Quick
          test_snapshot_v1_compat ] ) ]
