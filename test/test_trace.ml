(* Tests for the tracing layer: event emission, fd-path reconstruction,
   the text format, and the mount-point filter. *)

open Iocov_syscall
module Fs = Iocov_vfs.Fs
module Event = Iocov_trace.Event
module Tracer = Iocov_trace.Tracer
module Format_io = Iocov_trace.Format_io
module Filter = Iocov_trace.Filter

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let rdonly = Open_flags.of_flags Open_flags.[ O_RDONLY ]
let creat = Open_flags.of_flags Open_flags.[ O_WRONLY; O_CREAT ]

let traced_setup () =
  let fs = Fs.create () in
  let tracer = Tracer.create ~pid:99 ~comm:"unit" fs in
  let events = ref [] in
  Tracer.on_event tracer (fun e -> events := e :: !events);
  ignore (Tracer.exec tracer (Model.mkdir ~mode:0o755 "/mnt"));
  ignore (Tracer.exec tracer (Model.mkdir ~mode:0o755 "/mnt/test"));
  (tracer, events)

let last events = List.hd !events

let test_event_per_call () =
  let tracer, events = traced_setup () in
  let before = List.length !events in
  ignore (Tracer.exec tracer (Model.open_ ~flags:rdonly "/mnt/test/none"));
  check_int "one event emitted" (before + 1) (List.length !events)

let test_event_fields () =
  let tracer, events = traced_setup () in
  ignore (Tracer.exec tracer (Model.open_ ~flags:rdonly "/mnt/test/none"));
  let e = last events in
  check_int "pid" 99 e.Event.pid;
  check_string "comm" "unit" e.Event.comm;
  check_bool "tracked" true (Event.is_tracked e);
  check_bool "base" true (Event.base e = Some Model.Open);
  check_bool "outcome recorded" true (e.Event.outcome = Model.Err Errno.ENOENT)

let test_timestamps_monotone () =
  let tracer, events = traced_setup () in
  for _ = 1 to 5 do
    ignore (Tracer.exec tracer (Model.open_ ~flags:rdonly "/mnt/test/none"))
  done;
  let ts = List.rev_map (fun e -> e.Event.timestamp_ns) !events in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a < b && monotone rest
    | _ -> true
  in
  check_bool "strictly increasing" true (monotone ts)

let test_fd_path_reconstruction () =
  let tracer, events = traced_setup () in
  (match Tracer.exec tracer (Model.open_ ~mode:0o644 ~flags:creat "/mnt/test/file") with
   | Model.Ret fd ->
     ignore (Tracer.exec tracer (Model.write ~fd ~count:10 ()));
     let e = last events in
     check_bool "write hint from fd table" true (e.Event.path_hint = Some "/mnt/test/file");
     ignore (Tracer.exec tracer (Model.close fd));
     let e = last events in
     check_bool "close hint too" true (e.Event.path_hint = Some "/mnt/test/file");
     (* after close, the binding is gone *)
     ignore (Tracer.exec tracer (Model.read ~fd ~count:1 ()));
     check_bool "stale fd has no hint" true ((last events).Event.path_hint = None)
   | Model.Err e -> Alcotest.failf "open failed: %s" (Errno.to_string e))

let test_relative_paths_absolutized () =
  let tracer, events = traced_setup () in
  ignore (Tracer.exec tracer (Model.chdir (Model.Path "/mnt/test")));
  ignore (Tracer.exec tracer (Model.open_ ~mode:0o644 ~flags:creat "sub.txt"));
  check_bool "hint absolutized" true
    ((last events).Event.path_hint = Some "/mnt/test/sub.txt");
  check_string "tracer cwd tracked" "/mnt/test" (Tracer.cwd tracer)

let test_dot_dot_folded () =
  let tracer, events = traced_setup () in
  ignore (Tracer.exec tracer (Model.open_ ~flags:rdonly "/mnt/test/../test/./x"));
  check_bool "canonical hint" true ((last events).Event.path_hint = Some "/mnt/test/x")

let test_aux_events () =
  let tracer, events = traced_setup () in
  ignore (Tracer.exec_aux tracer (Fs.Unlink "/mnt/test/none"));
  let e = last events in
  check_bool "aux untracked" false (Event.is_tracked e);
  (match e.Event.payload with
   | Event.Aux { name; _ } -> check_string "aux name" "unlink" name
   | Event.Tracked _ -> Alcotest.fail "expected aux");
  check_bool "aux hint" true (e.Event.path_hint = Some "/mnt/test/none")

let test_crash_resets_tracker_state () =
  let tracer, _events = traced_setup () in
  (match Tracer.exec tracer (Model.open_ ~mode:0o644 ~flags:creat "/mnt/test/f") with
   | Model.Ret _ -> ()
   | Model.Err _ -> Alcotest.fail "open");
  ignore (Tracer.exec tracer (Model.chdir (Model.Path "/mnt/test")));
  ignore (Tracer.exec_aux tracer Fs.Crash);
  check_string "cwd reset" "/" (Tracer.cwd tracer)

(* --- text format --- *)

let sample_event payload outcome hint =
  { Event.seq = 1; timestamp_ns = 12345; pid = 7; comm = "xfstests"; payload;
    outcome; path_hint = hint }

let test_line_roundtrip_tracked () =
  let e =
    sample_event
      (Event.Tracked (Model.open_ ~flags:rdonly "/mnt/test/a b\"c"))
      (Model.Ret 3) (Some "/mnt/test/a b\"c")
  in
  let line = Format_io.to_line e in
  match Format_io.of_line line with
  | Ok e' -> check_string "roundtrip" line (Format_io.to_line e')
  | Error msg -> Alcotest.failf "parse failed: %s (%s)" msg line

let test_line_roundtrip_aux () =
  let e =
    sample_event (Event.Aux { name = "fsync"; detail = "fd=3" }) (Model.Ret 0)
      (Some "/mnt/test/x")
  in
  let line = Format_io.to_line e in
  match Format_io.of_line line with
  | Ok e' -> check_string "roundtrip" line (Format_io.to_line e')
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_line_roundtrip_no_hint () =
  let e = sample_event (Event.Aux { name = "sync"; detail = "" }) (Model.Ret 0) None in
  let line = Format_io.to_line e in
  match Format_io.of_line line with
  | Ok e' -> check_bool "no hint" true (e'.Event.path_hint = None)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_line_errors () =
  List.iter
    (fun line ->
      match Format_io.of_line line with
      | Ok _ -> Alcotest.failf "expected failure: %S" line
      | Error _ -> ())
    [ ""; "garbage"; "[1] pid=1 comm=\"x\" nonsense";
      "[x] pid=1 comm=\"a\" close(fd=1) -> ok:0" ]

let test_channel_roundtrip () =
  let tracer, events = traced_setup () in
  (match Tracer.exec tracer (Model.open_ ~mode:0o644 ~flags:creat "/mnt/test/f") with
   | Model.Ret fd ->
     ignore (Tracer.exec tracer (Model.write ~fd ~count:100 ()));
     ignore (Tracer.exec_aux tracer (Fs.Fsync fd));
     ignore (Tracer.exec tracer (Model.close fd))
   | Model.Err _ -> Alcotest.fail "open");
  let recorded = List.rev !events in
  let path = Filename.temp_file "iocov_test" ".trace" in
  let oc = open_out path in
  Format_io.write_channel oc recorded;
  close_out oc;
  let ic = open_in path in
  let read_back = Result.get_ok (Format_io.read_channel ic) in
  close_in ic;
  Sys.remove path;
  check_int "all records back" (List.length recorded) (List.length read_back);
  List.iter2
    (fun a b -> check_string "record identical" (Format_io.to_line a) (Format_io.to_line b))
    recorded read_back

let test_fold_skips_comments () =
  let path = Filename.temp_file "iocov_test" ".trace" in
  let oc = open_out path in
  output_string oc "# a comment\n\n";
  output_string oc "[1] pid=1 comm=\"t\" close(fd=3) -> err:EBADF\n";
  close_out oc;
  let ic = open_in path in
  let n = Result.get_ok (Format_io.fold_channel ic ~init:0 ~f:(fun acc _ -> acc + 1)) in
  close_in ic;
  Sys.remove path;
  check_int "one record" 1 n

let event_roundtrip_prop =
  let gen =
    QCheck.Gen.(
      let* fd = int_range 0 1000 in
      let* count = int_range 0 (1 lsl 30) in
      let* ts = int_range 0 (1 lsl 40) in
      let* hint = opt (map (fun s -> "/mnt/" ^ s) (string_size ~gen:(char_range 'a' 'z') (return 5))) in
      let* ok = bool in
      return
        {
          Event.seq = 0;
          timestamp_ns = ts;
          pid = 1;
          comm = "prop";
          payload = Event.Tracked (Model.read ~fd ~count ());
          outcome = (if ok then Model.Ret count else Model.Err Errno.EINTR);
          path_hint = hint;
        })
  in
  QCheck.Test.make ~name:"event line roundtrip" ~count:300 (QCheck.make gen) (fun e ->
      match Format_io.of_line (Format_io.to_line e) with
      | Ok e' -> Format_io.to_line e' = Format_io.to_line e
      | Error _ -> false)

(* --- binary format --- *)

module Binary_io = Iocov_trace.Binary_io

let record_workload () =
  let tracer, events = traced_setup () in
  (match Tracer.exec tracer (Model.open_ ~mode:0o644 ~flags:creat "/mnt/test/bin") with
   | Model.Ret fd ->
     ignore (Tracer.exec tracer (Model.write ~fd ~count:4096 ()));
     ignore (Tracer.exec tracer (Model.write ~variant:Model.Sys_pwrite64 ~offset:0 ~fd ~count:0 ()));
     ignore (Tracer.exec tracer (Model.lseek ~fd ~offset:(-2) ~whence:Whence.SEEK_END));
     ignore (Tracer.exec_aux tracer (Fs.Fsync fd));
     ignore (Tracer.exec tracer (Model.close fd))
   | Model.Err _ -> Alcotest.fail "open failed");
  ignore (Tracer.exec tracer (Model.open_ ~flags:rdonly "/mnt/test/none"));
  ignore
    (Tracer.exec tracer
       (Model.setxattr ~target:(Model.Path "/mnt/test/bin") ~name:"user.k" ~size:9 ()));
  ignore (Tracer.exec tracer (Model.mkdir ~mode:0o1777 "/mnt/test/d"));
  ignore (Tracer.exec tracer (Model.chdir (Model.Path "/mnt/test/d")));
  ignore (Tracer.exec tracer (Model.truncate ~target:(Model.Path "/mnt/test/bin") ~length:77 ()));
  ignore (Tracer.exec tracer (Model.chmod ~target:(Model.Path "/mnt/test/bin") ~mode:0 ()));
  ignore
    (Tracer.exec tracer
       (Model.getxattr ~variant:Model.Sys_lgetxattr ~target:(Model.Path "/mnt/test/bin")
          ~name:"user.k" ~size:0 ()));
  List.rev !events

(* --- fast scanner vs reference parser --- *)

(* [of_line] is the single-pass scanner with a fallback to the
   reference pipeline; it must be extensionally equal to
   [of_line_reference] — same accepted lines, same events, and failures
   on the same inputs. *)
let check_scanner_agrees line =
  match (Format_io.of_line line, Format_io.of_line_reference line) with
  | Ok a, Ok b ->
    check_string
      (Printf.sprintf "agree on %S" line)
      (Format_io.to_line b) (Format_io.to_line a)
  | Error _, Error _ -> ()
  | Ok _, Error msg -> Alcotest.failf "fast accepted, reference rejected %S: %s" line msg
  | Error msg, Ok _ -> Alcotest.failf "fast rejected, reference accepted %S: %s" line msg

let test_scanner_canonical_shapes () =
  (* every call shape the tracer can emit, plus aux and hint variants *)
  let events = record_workload () in
  check_bool "workload covers shapes" true (List.length events >= 10);
  List.iter (fun e -> check_scanner_agrees (Format_io.to_line e)) events;
  (* round-trip sanity: the scanner reproduces the canonical line *)
  List.iter
    (fun e ->
      match Format_io.of_line (Format_io.to_line e) with
      | Ok e' -> check_string "scanner round-trip" (Format_io.to_line e) (Format_io.to_line e')
      | Error msg -> Alcotest.failf "scanner rejected canonical line: %s" msg)
    events

let test_scanner_noncanonical_agrees () =
  List.iter check_scanner_agrees
    [ (* reordered fields: reference accepts, scanner must defer *)
      "[1] pid=1 comm=\"t\" read(count=4, fd=3) -> ok:4";
      (* liberal whitespace the reference's Scanf tolerates *)
      "[1]  pid=1 comm=\"t\" close(fd=1) -> ok:0";
      "[1] pid=1 comm=\"t\" close(fd=1) -> ok:0 ";
      (* underscored integers: int_of_string accepts them *)
      "[1] pid=1 comm=\"t\" close(fd=1_0) -> ok:0";
      "[1] pid=1 comm=\"t\" chmod(path=\"/a\", mode=0o6_44) -> ok:0";
      (* duplicate field: the reference keeps the first *)
      "[1] pid=1 comm=\"t\" close(fd=1, fd=2) -> ok:0";
      (* a hint containing the arrow breaks the reference's last-arrow
         split; the scanner must agree, not silently succeed *)
      "[1] pid=1 comm=\"t\" close(fd=1) -> ok:0 hint=\"x -> y\"";
      (* aux payloads with hostile details *)
      "[1] pid=1 comm=\"t\" !fsync(fd=3 (dup)) -> ok:0";
      "[1] pid=1 comm=\"t\" !note(a -> b) -> ok:0";
      "[1] pid=1 comm=\"t\" !note(a) -> b) -> ok:0";
      (* escapes in strings *)
      "[1] pid=1 comm=\"a\\\"b\\n\\t\\\\\" close(fd=1) -> ok:0";
      "[1] pid=1 comm=\"t\" chdir(path=\"/m\\001nt\") -> ok:0 hint=\"/m\\001nt\"";
      (* malformed tails *)
      "[1] pid=1 comm=\"t\" close(fd=1) -> ok:x";
      "[1] pid=1 comm=\"t\" close(fd=1) -> err:EWHAT";
      "[1] pid=1 comm=\"t\" close(fd=1) -> ok:0 junk";
      "[1] pid=1 comm=\"t\" open(path=\"/a\", flags=O_RDONLY) -> ok:3";
      "[1] pid=1 comm=\"t\" frobnicate(fd=1) -> ok:0";
      "[1] pid=1 comm=\"t\" close(fd=1)";
      "[-5] pid=-3 comm=\"t\" lseek(fd=3, offset=-2, whence=SEEK_HOLE) -> err:EINVAL" ]

let scanner_agreement_prop =
  (* arbitrary bytes in every string position: escape decoding, bail
     heuristics, and the fallback must stay aligned with the oracle *)
  let gen =
    QCheck.Gen.(
      let any_string = string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 12) in
      let* comm = any_string in
      let* path = any_string in
      let* hint = opt any_string in
      let* err = bool in
      return
        {
          Event.seq = 0;
          timestamp_ns = 7;
          pid = 9;
          comm;
          payload = Event.Tracked (Model.chdir (Model.Path path));
          outcome = (if err then Model.Err Errno.ENOENT else Model.Ret 0);
          path_hint = hint;
        })
  in
  QCheck.Test.make ~name:"scanner agrees with reference" ~count:500 (QCheck.make gen)
    (fun e ->
      let line = Format_io.to_line e in
      match (Format_io.of_line line, Format_io.of_line_reference line) with
      | Ok a, Ok b -> Format_io.to_line a = Format_io.to_line b
      | Error _, Error _ -> true
      | _ -> false)


let binary_roundtrip events =
  let path = Filename.temp_file "iocov_bin" ".trace" in
  let oc = open_out_bin path in
  let w = Binary_io.writer oc in
  List.iter (Binary_io.write_event w) events;
  Binary_io.flush w;
  close_out oc;
  let ic = open_in_bin path in
  let back = Binary_io.read_channel ic in
  close_in ic;
  Sys.remove path;
  back

let test_binary_roundtrip () =
  let events = record_workload () in
  match binary_roundtrip events with
  | Ok back ->
    check_int "count preserved" (List.length events) (List.length back);
    List.iter2
      (fun a b ->
        (* compare through the text form, which covers every field *)
        check_string "record identical" (Format_io.to_line a) (Format_io.to_line b))
      events back
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_binary_smaller_than_text () =
  let events = record_workload () in
  let bin = Filename.temp_file "iocov_bin" ".trace" in
  let txt = Filename.temp_file "iocov_txt" ".trace" in
  let oc = open_out_bin bin in
  let w = Binary_io.writer oc in
  List.iter (Binary_io.write_event w) events;
  Binary_io.flush w;
  close_out oc;
  let oc = open_out txt in
  Format_io.write_channel oc events;
  close_out oc;
  let size f = (Unix.stat f).Unix.st_size in
  let b = size bin and t = size txt in
  Sys.remove bin;
  Sys.remove txt;
  check_bool "binary at most half the text size" true (b * 2 < t)

let test_binary_detects_magic () =
  let events = record_workload () in
  let bin = Filename.temp_file "iocov_bin" ".trace" in
  let oc = open_out_bin bin in
  let w = Binary_io.writer oc in
  List.iter (Binary_io.write_event w) events;
  Binary_io.flush w;
  close_out oc;
  let ic = open_in_bin bin in
  check_bool "binary detected" true (Binary_io.is_binary_trace ic);
  (* detection must not consume the stream *)
  check_bool "still decodable" true (Result.is_ok (Binary_io.read_channel ic));
  close_in ic;
  Sys.remove bin;
  let txt = Filename.temp_file "iocov_txt" ".trace" in
  let oc = open_out txt in
  output_string oc "[1] pid=1 comm=\"t\" close(fd=3) -> ok:0\n";
  close_out oc;
  let ic = open_in_bin txt in
  check_bool "text not detected as binary" false (Binary_io.is_binary_trace ic);
  close_in ic;
  Sys.remove txt

let test_binary_rejects_corruption () =
  let events = record_workload () in
  let bin = Filename.temp_file "iocov_bin" ".trace" in
  let oc = open_out_bin bin in
  let w = Binary_io.writer oc in
  List.iter (Binary_io.write_event w) events;
  Binary_io.flush w;
  close_out oc;
  let data = In_channel.with_open_bin bin In_channel.input_all in
  Sys.remove bin;
  (* truncated stream *)
  let cut = Filename.temp_file "iocov_bin" ".trace" in
  let oc = open_out_bin cut in
  output_string oc (String.sub data 0 (String.length data - 3));
  close_out oc;
  let ic = open_in_bin cut in
  check_bool "truncation detected" true (Result.is_error (Binary_io.read_channel ic));
  close_in ic;
  Sys.remove cut;
  (* wrong magic *)
  let bad = Filename.temp_file "iocov_bin" ".trace" in
  let oc = open_out_bin bad in
  output_string oc "NOPE!";
  close_out oc;
  let ic = open_in_bin bad in
  check_bool "bad magic rejected" true (Result.is_error (Binary_io.read_channel ic));
  close_in ic;
  Sys.remove bad

let binary_event_roundtrip_prop =
  let gen =
    QCheck.Gen.(
      let* fd = int_range 0 1000 in
      let* count = int_range 0 (1 lsl 30) in
      let* ts = int_range 0 (1 lsl 40) in
      let* hint = opt (map (fun s -> "/mnt/" ^ s) (string_size ~gen:(char_range 'a' 'z') (return 5))) in
      let* err = oneofl Errno.all in
      let* ok = bool in
      return
        {
          Event.seq = 1;
          timestamp_ns = ts;
          pid = 1;
          comm = "prop";
          payload = Event.Tracked (Model.write ~variant:Model.Sys_pwrite64 ~offset:count ~fd ~count ());
          outcome = (if ok then Model.Ret count else Model.Err err);
          path_hint = hint;
        })
  in
  QCheck.Test.make ~name:"binary event roundtrip" ~count:200 (QCheck.make gen) (fun e ->
      match binary_roundtrip [ e ] with
      | Ok [ e' ] -> Format_io.to_line e' = Format_io.to_line e
      | _ -> false)

(* --- filter --- *)

let mk_event hint =
  sample_event (Event.Tracked (Model.close 3)) (Model.Ret 0) hint

let test_filter_mount_point () =
  let f = Filter.mount_point "/mnt/test" in
  check_bool "keeps below" true (Filter.keeps f (mk_event (Some "/mnt/test/a/b")));
  check_bool "keeps exact" true (Filter.keeps f (mk_event (Some "/mnt/test")));
  check_bool "drops sibling" false (Filter.keeps f (mk_event (Some "/mnt/test2/a")));
  check_bool "drops outside" false (Filter.keeps f (mk_event (Some "/var/log/x")));
  check_bool "drops hintless" false (Filter.keeps f (mk_event None))

let test_filter_trailing_slash_normalized () =
  let f = Filter.mount_point "/mnt/test/" in
  check_bool "keeps below" true (Filter.keeps f (mk_event (Some "/mnt/test/a")))

let test_filter_multiple_patterns () =
  let f = Filter.create_exn ~patterns:[ "^/mnt/a(/|$)"; "^/mnt/b(/|$)" ] in
  check_bool "first" true (Filter.keeps f (mk_event (Some "/mnt/a/x")));
  check_bool "second" true (Filter.keeps f (mk_event (Some "/mnt/b/y")));
  check_bool "neither" false (Filter.keeps f (mk_event (Some "/mnt/c/z")))

let test_filter_bad_pattern () =
  match Filter.create ~patterns:[ "(" ] with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error msg -> check_bool "names the pattern" true (String.length msg > 0)

let test_filter_fold_stats () =
  let f = Filter.mount_point "/mnt/test" in
  let events =
    [ mk_event (Some "/mnt/test/a"); mk_event (Some "/etc/passwd"); mk_event None;
      mk_event (Some "/mnt/test") ]
  in
  let count, stats = Filter.fold f ~init:0 ~f:(fun acc _ -> acc + 1) events in
  check_int "kept" 2 count;
  check_int "stats kept" 2 stats.Filter.kept;
  check_int "stats dropped" 2 stats.Filter.dropped

let test_filter_regex_metachars_escaped () =
  (* a mount point containing regex metacharacters must match literally *)
  let f = Filter.mount_point "/mnt/te.st" in
  check_bool "literal dot" true (Filter.keeps f (mk_event (Some "/mnt/te.st/a")));
  check_bool "not any-char" false (Filter.keeps f (mk_event (Some "/mnt/teXst/a")))

let suites =
  [ ( "trace.tracer",
      [ Alcotest.test_case "event per call" `Quick test_event_per_call;
        Alcotest.test_case "event fields" `Quick test_event_fields;
        Alcotest.test_case "timestamps monotone" `Quick test_timestamps_monotone;
        Alcotest.test_case "fd-path reconstruction" `Quick test_fd_path_reconstruction;
        Alcotest.test_case "relative paths absolutized" `Quick test_relative_paths_absolutized;
        Alcotest.test_case "dot-dot folded" `Quick test_dot_dot_folded;
        Alcotest.test_case "aux events" `Quick test_aux_events;
        Alcotest.test_case "crash resets tracker" `Quick test_crash_resets_tracker_state ] );
    ( "trace.format",
      [ Alcotest.test_case "tracked roundtrip" `Quick test_line_roundtrip_tracked;
        Alcotest.test_case "aux roundtrip" `Quick test_line_roundtrip_aux;
        Alcotest.test_case "no-hint roundtrip" `Quick test_line_roundtrip_no_hint;
        Alcotest.test_case "malformed lines" `Quick test_line_errors;
        Alcotest.test_case "channel roundtrip" `Quick test_channel_roundtrip;
        Alcotest.test_case "fold skips comments" `Quick test_fold_skips_comments;
        QCheck_alcotest.to_alcotest event_roundtrip_prop ] );
    ( "trace.scanner",
      [ Alcotest.test_case "canonical shapes" `Quick test_scanner_canonical_shapes;
        Alcotest.test_case "non-canonical lines agree" `Quick
          test_scanner_noncanonical_agrees;
        QCheck_alcotest.to_alcotest scanner_agreement_prop ] );
    ( "trace.binary",
      [ Alcotest.test_case "roundtrip equals text form" `Quick test_binary_roundtrip;
        Alcotest.test_case "compactness" `Quick test_binary_smaller_than_text;
        Alcotest.test_case "magic detection" `Quick test_binary_detects_magic;
        Alcotest.test_case "corruption rejected" `Quick test_binary_rejects_corruption;
        QCheck_alcotest.to_alcotest binary_event_roundtrip_prop ] );
    ( "trace.filter",
      [ Alcotest.test_case "mount point" `Quick test_filter_mount_point;
        Alcotest.test_case "trailing slash" `Quick test_filter_trailing_slash_normalized;
        Alcotest.test_case "multiple patterns" `Quick test_filter_multiple_patterns;
        Alcotest.test_case "bad pattern" `Quick test_filter_bad_pattern;
        Alcotest.test_case "fold stats" `Quick test_filter_fold_stats;
        Alcotest.test_case "metachars escaped" `Quick test_filter_regex_metachars_escaped ] ) ]
