(* Tests for the compiled partition plan and the dense counter backend:
   layout sanity (the cell table is a bijection over the partition
   universe), white-box agreement between the compiled slot functions
   and the reference decode mapping, and the differential property —
   dense and reference pipelines produce byte-identical snapshots and
   reports for fuzzer-generated streams at any job count. *)

open Iocov_syscall
module Prng = Iocov_util.Prng
module Log2 = Iocov_util.Log2
module Event = Iocov_trace.Event
module Filter = Iocov_trace.Filter
module Plan = Iocov_core.Plan
module Partition = Iocov_core.Partition
module Coverage = Iocov_core.Coverage
module Snapshot = Iocov_core.Snapshot
module Report = Iocov_core.Report
module Pool = Iocov_par.Pool
module Replay = Iocov_par.Replay

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- a fuzzer over the full call surface ---

   Wider than test_par's generator on purpose: all 11 bases, all 27
   variants, raw (unnormalized) flag masks, extreme numerics (zero,
   negative, 2^40, max_int), and every errno — the differential oracle
   is only convincing if the stream can reach every cell family. *)

let errnos = Array.of_list Errno.all
let whences = Array.of_list Whence.all
let xflags = Array.of_list Xattr_flag.all

let rand_flags rng =
  match Prng.int rng 3 with
  | 0 ->
    Prng.choose rng
      [| Open_flags.of_flags Open_flags.[ O_RDONLY ];
         Open_flags.of_flags Open_flags.[ O_RDWR; O_CREAT; O_TRUNC ];
         Open_flags.of_flags Open_flags.[ O_WRONLY; O_CREAT; O_SYNC ];
         Open_flags.of_flags Open_flags.[ O_RDONLY; O_DIRECTORY ];
         Open_flags.of_flags Open_flags.[ O_RDWR; O_TMPFILE ];
         Open_flags.of_flags Open_flags.[ O_WRONLY; O_DSYNC; O_APPEND ] |]
  | 1 -> Prng.int rng 0o40000000 (* raw mask: exercises normalization *)
  | _ ->
    List.fold_left
      (fun acc f -> if Prng.chance rng 0.2 then acc lor Open_flags.bit f else acc)
      (Prng.int rng 4) Open_flags.all

let rand_mode rng =
  match Prng.int rng 4 with
  | 0 -> 0
  | 1 -> 0o644
  | 2 -> 0o7777
  | _ -> Prng.int rng 0o10000

let rand_size rng =
  match Prng.int rng 5 with
  | 0 -> 0
  | 1 -> 1 + Prng.int rng 7
  | 2 -> Prng.pow2_size rng ~max_log2:20
  | 3 -> 1 lsl (20 + Prng.int rng 42)
  | _ -> max_int

let rand_signed rng =
  match Prng.int rng 3 with
  | 0 -> -(1 + Prng.int rng 100_000)
  | _ -> rand_size rng

let gen_call rng =
  let path = Printf.sprintf "/mnt/test/d%d/f%d" (Prng.int rng 6) (Prng.int rng 40) in
  let fd = 3 + Prng.int rng 16 in
  let p = Model.Path path and f = Model.Fd fd in
  match Prng.int rng 11 with
  | 0 ->
    let variant =
      Prng.choose rng Model.[| Sys_open; Sys_openat; Sys_creat; Sys_openat2 |]
    in
    Model.open_ ~variant ~flags:(rand_flags rng) ~mode:(rand_mode rng) path
  | 1 ->
    if Prng.chance rng 0.4 then
      Model.read ~variant:Model.Sys_pread64 ~offset:(rand_signed rng) ~fd
        ~count:(rand_size rng) ()
    else
      Model.read
        ~variant:(Prng.choose rng Model.[| Sys_read; Sys_readv |])
        ~fd ~count:(rand_size rng) ()
  | 2 ->
    if Prng.chance rng 0.4 then
      Model.write ~variant:Model.Sys_pwrite64 ~offset:(rand_signed rng) ~fd
        ~count:(rand_size rng) ()
    else
      Model.write
        ~variant:(Prng.choose rng Model.[| Sys_write; Sys_writev |])
        ~fd ~count:(rand_size rng) ()
  | 3 -> Model.lseek ~fd ~offset:(rand_signed rng) ~whence:(Prng.choose rng whences)
  | 4 ->
    Model.truncate
      ~target:(if Prng.chance rng 0.5 then p else f)
      ~length:(rand_signed rng) ()
  | 5 ->
    Model.mkdir
      ~variant:(Prng.choose rng Model.[| Sys_mkdir; Sys_mkdirat |])
      ~mode:(rand_mode rng) path
  | 6 ->
    if Prng.chance rng 0.3 then
      Model.chmod ~variant:Model.Sys_fchmodat ~target:p ~mode:(rand_mode rng) ()
    else
      Model.chmod
        ~target:(if Prng.chance rng 0.5 then p else f)
        ~mode:(rand_mode rng) ()
  | 7 -> Model.close fd
  | 8 -> Model.chdir (if Prng.chance rng 0.5 then p else f)
  | 9 ->
    let variant =
      Prng.choose rng Model.[| Sys_setxattr; Sys_lsetxattr; Sys_fsetxattr |]
    in
    Model.setxattr ~variant ~flags:(Prng.choose rng xflags)
      ~target:(if variant = Model.Sys_fsetxattr then f else p)
      ~name:"user.iocov" ~size:(rand_size rng) ()
  | _ ->
    let variant =
      Prng.choose rng Model.[| Sys_getxattr; Sys_lgetxattr; Sys_fgetxattr |]
    in
    Model.getxattr ~variant
      ~target:(if variant = Model.Sys_fgetxattr then f else p)
      ~name:"user.iocov" ~size:(rand_size rng) ()

let gen_outcome rng call =
  if Prng.chance rng 0.3 then Model.Err (Prng.choose rng errnos)
  else if Model.returns_byte_count (Model.base_of_call call) then
    Model.Ret
      (match Prng.int rng 6 with
       | 0 -> 0
       | 1 -> 1 + Prng.int rng 65536
       | 2 -> 1 lsl (Prng.int rng 40)
       | 3 -> max_int
       | 4 -> -(1 + Prng.int rng 5) (* nonsense ret; classified OK 2^0 *)
       | _ -> Prng.pow2_size rng ~max_log2:30)
  else Model.Ret 0

let gen_pairs ~seed n =
  let rng = Prng.create ~seed in
  List.init n (fun _ ->
      let call = gen_call rng in
      (call, gen_outcome rng call))

let gen_events ~seed n =
  let rng = Prng.create ~seed in
  List.init n (fun seq ->
      let inside = Prng.chance rng 0.8 in
      let path =
        if inside then Printf.sprintf "/mnt/test/d%d" (Prng.int rng 8)
        else Printf.sprintf "/var/noise%d" (Prng.int rng 20)
      in
      let call = gen_call rng in
      {
        Event.seq;
        timestamp_ns = seq * 17;
        pid = 200 + Prng.int rng 3;
        comm = "fuzz";
        payload = Event.Tracked call;
        outcome = gen_outcome rng call;
        path_hint = (if Prng.chance rng 0.9 then Some path else None);
      })

(* --- plan layout --- *)

let test_plan_bijection () =
  check_int "cell table spans the universe" Plan.total (Array.length Plan.cells);
  let seen = Hashtbl.create Plan.total in
  Array.iter
    (fun c ->
      check_bool "no cell described twice" false (Hashtbl.mem seen c);
      Hashtbl.add seen c ())
    Plan.cells;
  check_int "all cells distinct" Plan.total (Hashtbl.length seen)

let test_plan_variant_cells () =
  List.iter
    (fun v ->
      check_bool (Model.variant_name v) true
        (Plan.cells.(Plan.variant_cell v) = Plan.Cell_variant v))
    Model.all_variants

let test_plan_bucket_slot () =
  let expected n =
    match Log2.bucket_of_int n with
    | Log2.Negative -> 0
    | Log2.Zero -> 1
    | Log2.Pow2 k -> 2 + k
  in
  List.iter
    (fun n ->
      check_int (Printf.sprintf "bucket_slot %d" n) (expected n) (Plan.bucket_slot n))
    [ min_int; -100; -1; 0; 1; 2; 3; 4; 1023; 1024; (1 lsl 40) + 7; max_int ]

(* [iter_input_slots] must enumerate exactly the (argument, partition)
   pairs the reference decoder produces — compared as sorted lists
   through the inverse cell table. *)
let test_plan_input_slots_match_of_call () =
  let rng = Prng.create ~seed:9001 in
  for _ = 1 to 3_000 do
    let call = gen_call rng in
    let via_plan = ref [] in
    Plan.iter_input_slots call (fun id ->
        match Plan.cells.(id) with
        | Plan.Cell_input (arg, part) -> via_plan := (arg, part) :: !via_plan
        | _ -> Alcotest.failf "input slot %d is not an input cell" id);
    let expected = List.sort compare (Partition.of_call call) in
    let got = List.sort compare !via_plan in
    check_bool
      (Printf.sprintf "input cells agree for %s" (Model.call_to_string call))
      true (expected = got)
  done

let test_plan_output_cell_matches_output_of () =
  let outcomes =
    Model.Ret 0 :: Model.Ret 1 :: Model.Ret 12345 :: Model.Ret max_int
    :: Model.Ret (-3)
    :: List.map (fun e -> Model.Err e) Errno.all
  in
  List.iter
    (fun base ->
      List.iter
        (fun outcome ->
          let id = Plan.output_cell base outcome in
          check_bool
            (Printf.sprintf "%s output cell" (Model.base_name base))
            true
            (Plan.cells.(id)
             = Plan.Cell_output (base, Partition.output_of base outcome)))
        outcomes)
    Model.all_bases

(* --- dense accumulator vs reference, direct observation --- *)

let snapshot_of_dense d = Snapshot.to_string (Coverage.Dense.to_reference d)

let test_dense_differential_direct () =
  List.iter
    (fun seed ->
      let pairs = gen_pairs ~seed 12_000 in
      let reference = Coverage.create ~metered:false () in
      let dense = Coverage.Dense.create () in
      List.iteri
        (fun i (call, outcome) ->
          if i mod 7 = 0 then begin
            (* input-only path: outcome unknown, output side untouched *)
            Coverage.observe_input_only reference call;
            Coverage.Dense.observe_input_only dense call
          end
          else begin
            Coverage.observe reference call outcome;
            Coverage.Dense.observe dense call outcome
          end)
        pairs;
      check_int
        (Printf.sprintf "calls agree (seed %d)" seed)
        (Coverage.calls_observed reference)
        (Coverage.Dense.calls_observed dense);
      check_string
        (Printf.sprintf "snapshots byte-identical (seed %d)" seed)
        (Snapshot.to_string reference) (snapshot_of_dense dense))
    [ 101; 202; 303 ]

let test_dense_merge_matches_whole () =
  let pairs = gen_pairs ~seed:555 9_000 in
  let whole = Coverage.Dense.create () in
  List.iter (fun (c, o) -> Coverage.Dense.observe whole c o) pairs;
  (* shard the same stream three ways, round-robin, and merge *)
  let shards = Array.init 3 (fun _ -> Coverage.Dense.create ()) in
  List.iteri (fun i (c, o) -> Coverage.Dense.observe shards.(i mod 3) c o) pairs;
  let dst = Coverage.Dense.create () in
  Array.iter (fun s -> Coverage.Dense.merge_into ~dst s) shards;
  check_string "merged shards = whole stream" (snapshot_of_dense whole)
    (snapshot_of_dense dst)

let test_dense_to_reference_merges_with_reference () =
  (* a converted dense accumulator must compose with reference merges *)
  let pairs = gen_pairs ~seed:777 4_000 in
  let a, b = (Coverage.create ~metered:false (), Coverage.Dense.create ()) in
  let all = Coverage.create ~metered:false () in
  List.iteri
    (fun i (c, o) ->
      Coverage.observe all c o;
      if i mod 2 = 0 then Coverage.observe a c o else Coverage.Dense.observe b c o)
    pairs;
  let dst = Coverage.create ~metered:false () in
  Coverage.merge_into ~dst a;
  Coverage.merge_into ~dst (Coverage.Dense.to_reference b);
  check_string "mixed merge" (Snapshot.to_string all) (Snapshot.to_string dst)

(* --- the pipeline differential: both backends, jobs 1/2/4 --- *)

let test_pipeline_differential () =
  let filter = Filter.mount_point "/mnt/test" in
  List.iter
    (fun seed ->
      let events = gen_events ~seed 10_000 in
      let oracle =
        Replay.analyze_events
          ~pool:(Pool.create ~jobs:1 ())
          ~counters:Replay.Reference ~filter events
      in
      let oracle_snap = Snapshot.to_string oracle.Replay.coverage in
      let oracle_report = Report.suite_summary ~name:"fuzz" oracle.Replay.coverage in
      List.iter
        (fun jobs ->
          List.iter
            (fun counters ->
              let o =
                Replay.analyze_events
                  ~pool:(Pool.create ~jobs ())
                  ~batch:256 ~counters ~filter events
              in
              let tag =
                Printf.sprintf "seed=%d jobs=%d %s" seed jobs
                  (match counters with
                   | Replay.Dense -> "dense"
                   | Replay.Reference -> "reference")
              in
              check_string (tag ^ " snapshot") oracle_snap
                (Snapshot.to_string o.Replay.coverage);
              check_string (tag ^ " report") oracle_report
                (Report.suite_summary ~name:"fuzz" o.Replay.coverage);
              check_int (tag ^ " kept") oracle.Replay.kept o.Replay.kept)
            [ Replay.Dense; Replay.Reference ])
        [ 1; 2; 4 ])
    [ 42; 1337 ]

let suites =
  [ ( "dense.plan",
      [ Alcotest.test_case "cell table is a bijection" `Quick test_plan_bijection;
        Alcotest.test_case "variant cells" `Quick test_plan_variant_cells;
        Alcotest.test_case "bucket_slot vs bucket_of_int" `Quick test_plan_bucket_slot;
        Alcotest.test_case "input slots vs of_call" `Quick
          test_plan_input_slots_match_of_call;
        Alcotest.test_case "output cell vs output_of" `Quick
          test_plan_output_cell_matches_output_of ] );
    ( "dense.coverage",
      [ Alcotest.test_case "differential vs reference" `Quick
          test_dense_differential_direct;
        Alcotest.test_case "shard merge = whole stream" `Quick
          test_dense_merge_matches_whole;
        Alcotest.test_case "to_reference composes with merges" `Quick
          test_dense_to_reference_merges_with_reference ] );
    ( "dense.pipeline",
      [ Alcotest.test_case "both backends, jobs 1/2/4" `Quick
          test_pipeline_differential ] ) ]
