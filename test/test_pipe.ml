(* Differential tests for the unified streaming pipeline (DESIGN.md §13):
   every consumer routed through Iocov_pipe.Driver must produce coverage
   byte-identical to the pre-pipe path it replaced — live suite runs vs
   direct observation, file replay vs Replay.analyze_file, binary v1/v2,
   both counter backends, jobs 1/2/4 — plus lenient-mode completeness
   equivalence, multi-sink single-pass analysis, stages, and the
   configuration errors the driver must report as values. *)

module Event = Iocov_trace.Event
module Filter = Iocov_trace.Filter
module Format_io = Iocov_trace.Format_io
module Binary_io = Iocov_trace.Binary_io
module Coverage = Iocov_core.Coverage
module Snapshot = Iocov_core.Snapshot
module Report = Iocov_core.Report
module Anomaly = Iocov_util.Anomaly
module Replay = Iocov_par.Replay
module Pool = Iocov_par.Pool
module Runner = Iocov_suites.Runner
module Source = Iocov_pipe.Source
module Stage = Iocov_pipe.Stage
module Sink = Iocov_pipe.Sink
module Driver = Iocov_pipe.Driver

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let synth_events = Test_par.synth_events
let with_temp_file = Test_par.with_temp_file
let filter = Filter.mount_point "/mnt/test"

let snap cov = Snapshot.to_string cov

let ok_run = function
  | Ok (r : Driver.run) -> r
  | Error msg -> Alcotest.failf "pipeline failed: %s" msg

let jobs_sweep = [ 1; 2; 4 ]
let backends = [ (Replay.Dense, "dense"); (Replay.Reference, "reference") ]

(* --- live suite runs: Runner-through-driver vs direct observation --- *)

let direct_suite_coverage suite ~seed ~scale =
  (* the pre-pipe classic path: the suite observes straight into a
     metered reference accumulator, filtering at the mount itself *)
  let coverage = Coverage.create () in
  let kept =
    match suite with
    | Runner.Crashmonkey ->
      let _, stats = Iocov_suites.Crashmonkey.run ~seed ~scale ~coverage () in
      stats.Iocov_suites.Crashmonkey.events_kept
    | Runner.Xfstests ->
      let _, stats = Iocov_suites.Xfstests.run ~seed ~scale ~coverage () in
      stats.Iocov_suites.Xfstests.events_kept
    | Runner.Ltp ->
      let _, stats = Iocov_suites.Ltp.run ~seed ~scale ~coverage () in
      stats.Iocov_suites.Ltp.events_kept
  in
  (coverage, kept)

let test_suite_differential () =
  List.iter
    (fun suite ->
      let seed = 42 and scale = 0.2 in
      let oracle_cov, oracle_kept = direct_suite_coverage suite ~seed ~scale in
      let oracle = snap oracle_cov in
      List.iter
        (fun jobs ->
          List.iter
            (fun (counters, cname) ->
              let r =
                Runner.run ~seed ~scale
                  ?jobs:(if jobs = 1 then None else Some jobs)
                  ~counters suite
              in
              let tag =
                Printf.sprintf "%s jobs=%d %s" (Runner.suite_name suite) jobs cname
              in
              check_string (tag ^ " snapshot") oracle (snap r.Runner.coverage);
              check_int (tag ^ " kept") oracle_kept r.Runner.events_kept)
            backends)
        jobs_sweep)
    [ Runner.Crashmonkey; Runner.Xfstests; Runner.Ltp ]

(* --- file replay: driver vs Replay.analyze_file, binary v1/v2 --- *)

let write_binary ?version path events =
  let oc = open_out_bin path in
  let w = Binary_io.writer ?version oc in
  List.iter (Binary_io.sink w) events;
  Binary_io.flush w;
  close_out oc

let write_text path events =
  Out_channel.with_open_text path (fun oc ->
      List.iter (Format_io.sink_channel oc) events)

let test_file_differential () =
  let events = synth_events ~seed:11 3_000 in
  List.iter
    (fun (fmt, write) ->
      with_temp_file (fun path ->
          write path events;
          (* the pre-pipe path: the engine called directly *)
          let oracle =
            match
              Replay.analyze_file ~pool:(Pool.create ~jobs:1 ())
                ~counters:Replay.Reference ~filter path
            with
            | Ok o -> o
            | Error msg -> Alcotest.failf "%s oracle: %s" fmt msg
          in
          List.iter
            (fun jobs ->
              List.iter
                (fun (counters, cname) ->
                  let config = Driver.config ~jobs ~batch:256 ~counters () in
                  let r =
                    ok_run
                      (Driver.run ~config ~stages:[ Stage.filter filter ]
                         (Source.file path))
                  in
                  let tag = Printf.sprintf "%s jobs=%d %s" fmt jobs cname in
                  check_string (tag ^ " snapshot")
                    (snap oracle.Replay.coverage)
                    (snap r.Driver.product.Sink.coverage);
                  check_int (tag ^ " kept") oracle.Replay.kept
                    r.Driver.product.Sink.kept;
                  check_int (tag ^ " events") oracle.Replay.events
                    r.Driver.product.Sink.events)
                backends)
            jobs_sweep))
    [ ("text", write_text);
      ("binary-v1", write_binary ~version:1);
      ("binary-v2", write_binary ~version:2);
      ("binary-v3", write_binary ~version:3) ]

(* --- lenient ingestion: completeness ledgers must agree --- *)

let flip_byte path off =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let check_completeness tag (a : Anomaly.completeness) (b : Anomaly.completeness) =
  check_int (tag ^ " events_read") a.Anomaly.events_read b.Anomaly.events_read;
  check_int (tag ^ " records_skipped") a.Anomaly.records_skipped
    b.Anomaly.records_skipped;
  check_int (tag ^ " corrupt_regions") a.Anomaly.corrupt_regions
    b.Anomaly.corrupt_regions;
  check_int (tag ^ " bytes_skipped") a.Anomaly.bytes_skipped b.Anomaly.bytes_skipped;
  check_bool (tag ^ " truncated") a.Anomaly.truncated b.Anomaly.truncated

let test_lenient_differential () =
  let events = synth_events ~seed:23 2_000 in
  with_temp_file (fun path ->
      write_binary ~version:2 path events;
      flip_byte path 600;
      let ingest = Replay.Lenient Anomaly.Unlimited in
      let oracle =
        match
          Replay.analyze_file ~pool:(Pool.create ~jobs:1 ())
            ~counters:Replay.Reference ~ingest ~filter path
        with
        | Ok o -> o
        | Error msg -> Alcotest.failf "lenient oracle: %s" msg
      in
      check_bool "corruption was injected" true
        (oracle.Replay.completeness.Anomaly.records_skipped > 0
         || oracle.Replay.completeness.Anomaly.corrupt_regions > 0);
      List.iter
        (fun jobs ->
          let config = Driver.config ~jobs ~ingest () in
          let r =
            ok_run
              (Driver.run ~config ~stages:[ Stage.filter filter ]
                 ~sinks:[ Sink.completeness ]
                 (Source.file path))
          in
          let tag = Printf.sprintf "lenient jobs=%d" jobs in
          check_string (tag ^ " snapshot")
            (snap oracle.Replay.coverage)
            (snap r.Driver.product.Sink.coverage);
          check_completeness tag oracle.Replay.completeness
            r.Driver.product.Sink.completeness;
          check_string (tag ^ " ledger section")
            (Report.completeness ~name:path oracle.Replay.completeness)
            (List.assoc "completeness" r.Driver.sections))
        jobs_sweep)

(* --- multi-sink: one traversal feeds every consumer --- *)

let test_multi_sink_single_pass () =
  let events = synth_events ~seed:31 2_000 in
  let config = Driver.config ~jobs:2 () in
  let r =
    ok_run
      (Driver.run ~config ~stages:[ Stage.filter filter ]
         ~sinks:
           [ Sink.summary; Sink.untested; Sink.completeness;
             Sink.tcd ~targets:[ 1.0; 100.0 ] ();
             Sink.custom ~name:"kept" (fun p ->
                 Some (string_of_int p.Sink.kept)) ]
         (Source.events ~label:"synth" events))
  in
  check_int "five sections" 5 (List.length r.Driver.sections);
  Alcotest.(check (list string))
    "section order"
    [ "summary"; "untested"; "completeness"; "tcd"; "kept" ]
    (List.map fst r.Driver.sections);
  let cov = r.Driver.product.Sink.coverage in
  check_string "summary section" (Report.suite_summary ~name:"synth" cov)
    (List.assoc "summary" r.Driver.sections);
  check_string "untested section" (Report.untested_summary ~name:"synth" cov)
    (List.assoc "untested" r.Driver.sections);
  check_string "kept section"
    (string_of_int r.Driver.product.Sink.kept)
    (List.assoc "kept" r.Driver.sections)

(* --- stages: maps compose with the filter, metering is transparent --- *)

let drop_writes (e : Event.t) =
  match e.Event.payload with
  | Event.Tracked call
    when Iocov_syscall.Model.base_of_call call = Iocov_syscall.Model.Write ->
    None
  | _ -> Some e

let test_stage_map () =
  let events = synth_events ~seed:47 4_000 in
  let kept_events =
    List.filter
      (fun e -> Filter.keeps filter e && drop_writes e <> None)
      events
  in
  let oracle =
    Replay.analyze_events ~pool:(Pool.create ~jobs:1 ())
      ~counters:Replay.Reference kept_events
  in
  List.iter
    (fun jobs ->
      let r =
        ok_run
          (Driver.run
             ~config:(Driver.config ~jobs ~batch:128 ())
             ~stages:
               [ Stage.filter filter; Stage.meter "pre";
                 Stage.map ~name:"drop-writes" drop_writes; Stage.meter "post" ]
             (Source.events events))
      in
      let tag = Printf.sprintf "map jobs=%d" jobs in
      check_string (tag ^ " snapshot")
        (snap oracle.Replay.coverage)
        (snap r.Driver.product.Sink.coverage))
    jobs_sweep

(* --- syzlang source: driver vs direct input-only observation --- *)

let syz_text =
  String.concat "\n"
    [ "r0 = openat(0xffffffffffffff9c, &(0x7f0000000000)='./file0\\x00', 0x42, 0x1ff)";
      "pwrite64(r0, &(0x7f0000000040)=\"deadbeef\", 0x4, 0x0)";
      "lseek(r0, 0x10, 0x1)";
      "socket(0x2, 0x1, 0x0)";
      "close(r0)" ]

let test_syz_differential () =
  let program =
    match Iocov_trace.Syzlang.parse_program syz_text with
    | Ok p -> p
    | Error msg -> Alcotest.failf "parse_program: %s" msg
  in
  let oracle = Coverage.create () in
  List.iter (Coverage.observe_input_only oracle) program.Iocov_trace.Syzlang.calls;
  List.iter
    (fun (counters, cname) ->
      let r =
        ok_run
          (Driver.run ~config:(Driver.config ~counters ()) (Source.syz syz_text))
      in
      check_string (cname ^ " snapshot") (snap oracle)
        (snap r.Driver.product.Sink.coverage);
      check_int (cname ^ " calls") (List.length program.Iocov_trace.Syzlang.calls)
        r.Driver.product.Sink.events;
      check_int (cname ^ " skips noted")
        (List.length program.Iocov_trace.Syzlang.skipped)
        (List.length r.Driver.product.Sink.notes))
    backends

(* --- live checkpointing: periodic atomic coverage snapshots --- *)

let test_live_checkpoint () =
  let events = synth_events ~seed:59 2_000 in
  with_temp_file (fun ckpt ->
      let feed emit = List.iter emit events in
      let r =
        ok_run
          (Driver.run ~stages:[ Stage.filter filter ]
             ~sinks:[ Sink.checkpoint ~path:ckpt ~every:500 ]
             (Source.live ~label:"synth" feed))
      in
      match Iocov_core.Snapshot.load_file ckpt with
      | Error msg -> Alcotest.failf "final live snapshot: %s" msg
      | Ok cov ->
        check_string "final snapshot = run coverage"
          (snap r.Driver.product.Sink.coverage)
          (snap cov))

(* --- configuration errors are values, never exceptions --- *)

let test_driver_errors () =
  let events = synth_events ~seed:61 100 in
  let is_error = function Ok _ -> false | Error _ -> true in
  check_bool "checkpoint sink on an event list" true
    (is_error
       (Driver.run
          ~sinks:[ Sink.checkpoint ~path:"/tmp/nope" ~every:10 ]
          (Source.events events)));
  check_bool "two checkpoint sinks" true
    (is_error
       (Driver.run
          ~sinks:
            [ Sink.checkpoint ~path:"/tmp/a" ~every:10;
              Sink.checkpoint ~path:"/tmp/b" ~every:10 ]
          (Source.file "/tmp/whatever")));
  check_bool "non-positive checkpoint interval" true
    (is_error
       (Driver.run
          ~sinks:[ Sink.checkpoint ~path:"/tmp/a" ~every:0 ]
          (Source.file "/tmp/whatever")));
  check_bool "sharded live checkpoint" true
    (is_error
       (Driver.run
          ~config:(Driver.config ~jobs:2 ())
          ~sinks:[ Sink.checkpoint ~path:"/tmp/a" ~every:10 ]
          (Source.live (fun _ -> ()))));
  check_bool "stages on a syzlang source" true
    (is_error
       (Driver.run ~stages:[ Stage.filter filter ] (Source.syz "close(3)")));
  check_bool "missing trace file" true
    (is_error (Driver.run (Source.file "/nonexistent/iocov.trace")))

(* --- limit truncates event-list sources --- *)

let test_events_limit () =
  let events = synth_events ~seed:67 1_000 in
  let r =
    ok_run
      (Driver.run
         ~config:(Driver.config ~limit:250 ())
         ~stages:[ Stage.filter filter ]
         (Source.events events))
  in
  check_int "events limited" 250 r.Driver.product.Sink.events

let suites =
  [ ( "pipe.suite",
      [ Alcotest.test_case "runner = direct observe, jobs x backends" `Quick
          test_suite_differential ] );
    ( "pipe.trace",
      [ Alcotest.test_case "driver = engine, text + binary v1/v2" `Quick
          test_file_differential;
        Alcotest.test_case "lenient ledger equivalence" `Quick
          test_lenient_differential ] );
    ( "pipe.sinks",
      [ Alcotest.test_case "multi-sink single pass" `Quick test_multi_sink_single_pass;
        Alcotest.test_case "live checkpoint snapshots" `Quick test_live_checkpoint ] );
    ( "pipe.stages",
      [ Alcotest.test_case "map + meter on shards" `Quick test_stage_map ] );
    ( "pipe.sources",
      [ Alcotest.test_case "syzlang = direct input-only" `Quick test_syz_differential;
        Alcotest.test_case "limit truncates events" `Quick test_events_limit ] );
    ( "pipe.errors",
      [ Alcotest.test_case "bad configurations are Error values" `Quick
          test_driver_errors ] ) ]
